#include "circuit/circuit.h"
#include "circuit/decompose.h"
#include "circuit/gate.h"
#include "circuit/qasm.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "linalg/random_unitary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

namespace {

using namespace epoc::circuit;
using epoc::linalg::equal_up_to_global_phase;
using epoc::linalg::random_unitary;

constexpr double kPi = std::numbers::pi;

TEST(Gate, ArityAndParamTables) {
    EXPECT_EQ(kind_arity(GateKind::H), 1);
    EXPECT_EQ(kind_arity(GateKind::CX), 2);
    EXPECT_EQ(kind_arity(GateKind::CCX), 3);
    EXPECT_EQ(kind_num_params(GateKind::RZ), 1);
    EXPECT_EQ(kind_num_params(GateKind::U3), 3);
    EXPECT_EQ(kind_num_params(GateKind::H), 0);
}

TEST(Gate, NameRoundTrip) {
    for (const GateKind k :
         {GateKind::X, GateKind::H, GateKind::Sdg, GateKind::RZ, GateKind::CX,
          GateKind::SWAP, GateKind::RZZ, GateKind::CCX, GateKind::CSWAP}) {
        EXPECT_EQ(kind_from_name(kind_name(k)), k);
    }
    EXPECT_THROW(kind_from_name("notagate"), std::invalid_argument);
}

TEST(Gate, AllFixedKindsAreUnitary) {
    for (const GateKind k :
         {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H, GateKind::S,
          GateKind::Sdg, GateKind::T, GateKind::Tdg, GateKind::SX, GateKind::SXdg,
          GateKind::CX, GateKind::CY, GateKind::CZ, GateKind::CH, GateKind::SWAP,
          GateKind::ISWAP, GateKind::CCX, GateKind::CCZ, GateKind::CSWAP}) {
        EXPECT_TRUE(kind_matrix(k, {}).is_unitary(1e-12)) << kind_name(k);
    }
}

TEST(Gate, ParameterizedKindsAreUnitary) {
    for (const GateKind k : {GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::P,
                             GateKind::CP, GateKind::CRX, GateKind::CRY, GateKind::CRZ,
                             GateKind::RXX, GateKind::RYY, GateKind::RZZ}) {
        EXPECT_TRUE(kind_matrix(k, {0.37}).is_unitary(1e-12)) << kind_name(k);
    }
    EXPECT_TRUE(kind_matrix(GateKind::U3, {0.3, 0.5, 0.7}).is_unitary(1e-12));
    EXPECT_TRUE(kind_matrix(GateKind::CU3, {0.3, 0.5, 0.7}).is_unitary(1e-12));
}

TEST(Gate, SxSquaredIsX) {
    const Matrix sx = kind_matrix(GateKind::SX, {});
    EXPECT_TRUE(equal_up_to_global_phase(sx * sx, pauli_x(), 1e-9));
}

TEST(Gate, SSquaredIsZ) {
    const Matrix s = kind_matrix(GateKind::S, {});
    EXPECT_TRUE(s.approx_equal((s * s) * kind_matrix(GateKind::Sdg, {}), 1e-12));
    EXPECT_TRUE((s * s).approx_equal(pauli_z(), 1e-12));
}

TEST(Gate, TSquaredIsS) {
    const Matrix t = kind_matrix(GateKind::T, {});
    EXPECT_TRUE((t * t).approx_equal(kind_matrix(GateKind::S, {}), 1e-12));
}

TEST(Gate, HadamardConjugatesXToZ) {
    const Matrix h = hadamard();
    EXPECT_TRUE((h * pauli_x() * h).approx_equal(pauli_z(), 1e-12));
}

TEST(Gate, RotationsMatchExponentials) {
    const double th = 1.1;
    EXPECT_TRUE(rx_matrix(th).is_unitary());
    EXPECT_NEAR(std::abs(rx_matrix(th)(0, 0) - std::complex(std::cos(th / 2), 0.0)), 0.0,
                1e-12);
    EXPECT_TRUE(equal_up_to_global_phase(rz_matrix(th),
                                         kind_matrix(GateKind::P, {th}), 1e-9));
}

TEST(Gate, InverseComposesToIdentity) {
    std::mt19937_64 rng(4);
    std::uniform_real_distribution<double> ang(-kPi, kPi);
    for (const GateKind k : {GateKind::S, GateKind::T, GateKind::SX, GateKind::RX,
                             GateKind::RZ, GateKind::U3, GateKind::CP, GateKind::RZZ,
                             GateKind::CU3, GateKind::ISWAP}) {
        std::vector<double> params;
        for (int i = 0; i < kind_num_params(k); ++i) params.push_back(ang(rng));
        std::vector<int> qs(static_cast<std::size_t>(kind_arity(k)));
        for (std::size_t i = 0; i < qs.size(); ++i) qs[i] = static_cast<int>(i);
        const Gate g(k, qs, params);
        const Matrix prod = g.inverse().unitary() * g.unitary();
        EXPECT_TRUE(equal_up_to_global_phase(prod, Matrix::identity(prod.rows()), 1e-9))
            << kind_name(k);
    }
}

TEST(Gate, VugCarriesMatrixAndValidatesDimension) {
    const Matrix u = random_unitary(4, std::uint64_t{5});
    const Gate g = Gate::make_unitary({0, 2}, u, GateKind::VUG);
    EXPECT_TRUE(g.unitary().approx_equal(u, 1e-12));
    EXPECT_THROW(Gate::make_unitary({0}, u), std::invalid_argument);
    EXPECT_THROW(Gate::make_unitary({0, 1}, u, GateKind::H), std::invalid_argument);
}

TEST(Circuit, AddValidatesOperands) {
    Circuit c(2);
    EXPECT_THROW(c.add(Gate(GateKind::H, {5})), std::out_of_range);
    EXPECT_THROW(c.add(Gate(GateKind::CX, {0})), std::invalid_argument);
    EXPECT_THROW(c.add(Gate(GateKind::CX, {1, 1})), std::invalid_argument);
    EXPECT_THROW(c.add(Gate(GateKind::RZ, {0})), std::invalid_argument);
    EXPECT_THROW(c.add(Gate(GateKind::H, {})), std::invalid_argument);
}

TEST(Circuit, DepthOfParallelAndSerialGates) {
    Circuit c(3);
    c.h(0).h(1).h(2);
    EXPECT_EQ(c.depth(), 1);
    c.cx(0, 1);
    EXPECT_EQ(c.depth(), 2);
    c.cx(1, 2);
    EXPECT_EQ(c.depth(), 3);
    c.x(0);
    EXPECT_EQ(c.depth(), 3); // fits beside cx(1,2)
}

TEST(Circuit, MomentsPartitionAllGates) {
    Circuit c(3);
    c.h(0).cx(0, 1).h(2).cx(1, 2).x(0);
    const auto ms = c.moments();
    std::size_t total = 0;
    for (const auto& m : ms) total += m.size();
    EXPECT_EQ(total, c.size());
    EXPECT_EQ(static_cast<int>(ms.size()), c.depth());
}

TEST(Circuit, CountsAndTCount) {
    Circuit c(2);
    c.t(0).tdg(1).t(0).cx(0, 1).h(0);
    EXPECT_EQ(c.t_count(), 3u);
    EXPECT_EQ(c.two_qubit_count(), 1u);
    EXPECT_EQ(c.count_kind(GateKind::H), 1u);
}

TEST(Circuit, InverseGivesIdentityUnitary) {
    Circuit c(3);
    c.h(0).cx(0, 1).t(1).rz(0.3, 2).cx(1, 2).s(0);
    Circuit both = c;
    both.append(c.inverse());
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(both), Matrix::identity(8), 1e-7));
}

TEST(Circuit, AppendMappedRelabelsQubits) {
    Circuit inner(2);
    inner.cx(0, 1);
    Circuit outer(4);
    outer.append_mapped(inner, {3, 1});
    EXPECT_EQ(outer.gate(0).qubits, (std::vector<int>{3, 1}));
}

TEST(Unitary, BellStateAmplitudes) {
    Circuit c(2);
    c.h(0).cx(0, 1);
    const auto psi = run_statevector(c);
    EXPECT_NEAR(std::abs(psi[0]), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(psi[3]), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(psi[1]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(psi[2]), 0.0, 1e-12);
}

TEST(Unitary, CxOrientationLittleEndian) {
    // Control qubit 0, target qubit 1: |01> (q0=1) -> |11> (index 3).
    Circuit c(2);
    c.cx(0, 1);
    const Matrix u = circuit_unitary(c);
    EXPECT_NEAR(std::abs(u(3, 1) - std::complex(1.0, 0.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(1, 1)), 0.0, 1e-12);
}

TEST(Unitary, EmbedMatchesApply) {
    std::mt19937_64 rng(77);
    const Matrix g = random_unitary(4, rng);
    const std::vector<int> qubits{2, 0};
    const Matrix full = embed_gate(g, qubits, 3);
    EXPECT_TRUE(full.is_unitary(1e-9));
    Matrix acc = Matrix::identity(8);
    apply_gate(acc, g, qubits, 3);
    EXPECT_LT(acc.max_abs_diff(full), 1e-9);
}

TEST(Unitary, NonAdjacentQubitsAndOrdering) {
    // X on qubit 2 of 3 flips the high bit.
    Circuit c(3);
    c.x(2);
    const auto psi = run_statevector(c);
    EXPECT_NEAR(std::abs(psi[4]), 1.0, 1e-12);
}

TEST(Unitary, GhzCircuit) {
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    const auto psi = run_statevector(c);
    EXPECT_NEAR(std::abs(psi[0]), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(psi[7]), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Unitary, CircuitUnitaryIsUnitary) {
    std::mt19937_64 rng(31);
    Circuit c(4);
    c.h(0).cx(0, 1).rz(0.4, 1).ccx(0, 1, 2).swap(2, 3).t(3).cz(0, 3);
    EXPECT_TRUE(circuit_unitary(c).is_unitary(1e-9));
}

// --- ZYZ / transpilation ---------------------------------------------------

TEST(Decompose, ZyzRecoversRandomSingleQubitUnitaries) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Matrix u = random_unitary(2, seed);
        const Zyz e = zyz_decompose(u);
        const Matrix rebuilt =
            std::polar(1.0, e.phase) * u3_matrix(e.theta, e.phi, e.lambda);
        EXPECT_LT(rebuilt.max_abs_diff(u), 1e-9) << "seed " << seed;
    }
}

TEST(Decompose, ZyzHandlesDiagonalAndAntiDiagonal) {
    const Matrix z = pauli_z();
    const Zyz ez = zyz_decompose(z);
    EXPECT_LT((std::polar(1.0, ez.phase) * u3_matrix(ez.theta, ez.phi, ez.lambda))
                  .max_abs_diff(z),
              1e-9);
    const Matrix x = pauli_x();
    const Zyz ex = zyz_decompose(x);
    EXPECT_LT((std::polar(1.0, ex.phase) * u3_matrix(ex.theta, ex.phi, ex.lambda))
                  .max_abs_diff(x),
              1e-9);
}

class TranspileKinds : public ::testing::TestWithParam<GateKind> {};

TEST_P(TranspileKinds, ExpansionPreservesUnitary) {
    const GateKind k = GetParam();
    std::mt19937_64 rng(1234);
    std::uniform_real_distribution<double> ang(-kPi, kPi);
    std::vector<double> params;
    for (int i = 0; i < kind_num_params(k); ++i) params.push_back(ang(rng));
    const int arity = kind_arity(k);
    std::vector<int> qs(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) qs[static_cast<std::size_t>(i)] = i;

    Circuit original(arity);
    original.add(Gate(k, qs, params));

    for (const Basis basis : {Basis::U3_CX, Basis::RZ_SX_CX}) {
        const Circuit lowered = transpile(original, basis);
        EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(lowered),
                                             circuit_unitary(original), 1e-7))
            << kind_name(k);
        for (const Gate& g : lowered.gates()) {
            if (basis == Basis::U3_CX)
                EXPECT_TRUE(g.kind == GateKind::U3 || g.kind == GateKind::CX);
            else
                EXPECT_TRUE(g.kind == GateKind::RZ || g.kind == GateKind::SX ||
                            g.kind == GateKind::CX);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TranspileKinds,
    ::testing::Values(GateKind::X, GateKind::Y, GateKind::Z, GateKind::H, GateKind::S,
                      GateKind::Sdg, GateKind::T, GateKind::Tdg, GateKind::SX,
                      GateKind::SXdg, GateKind::RX, GateKind::RY, GateKind::RZ,
                      GateKind::P, GateKind::U3, GateKind::CX, GateKind::CY, GateKind::CZ,
                      GateKind::CH, GateKind::SWAP, GateKind::ISWAP, GateKind::CP,
                      GateKind::CRX, GateKind::CRY, GateKind::CRZ, GateKind::RXX,
                      GateKind::RYY, GateKind::RZZ, GateKind::CU3, GateKind::CCX,
                      GateKind::CCZ, GateKind::CSWAP));

TEST(Decompose, RandomSingleQubitVugLowers) {
    const Matrix u = random_unitary(2, std::uint64_t{99});
    const Gate g = Gate::make_unitary({0}, u, GateKind::VUG);
    const Circuit lowered = decompose_gate(g, Basis::RZ_SX_CX, 1);
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(lowered), u, 1e-8));
}

TEST(Decompose, MultiQubitVugRejected) {
    const Matrix u = random_unitary(4, std::uint64_t{98});
    const Gate g = Gate::make_unitary({0, 1}, u, GateKind::VUG);
    EXPECT_THROW(decompose_gate(g, Basis::U3_CX, 2), std::invalid_argument);
}

TEST(Decompose, WholeCircuitTranspiles) {
    Circuit c(4);
    c.h(0).cx(0, 1).ccx(0, 1, 2).rzz(0.7, 2, 3).swap(0, 3).crz(0.3, 1, 2);
    const Circuit lowered = transpile(c, Basis::RZ_SX_CX);
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(lowered), circuit_unitary(c),
                                         1e-7));
}

// --- QASM --------------------------------------------------------------------

TEST(Qasm, ParsesSimpleProgram) {
    const std::string src = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
measure q -> c;
)";
    const Circuit c = parse_qasm(src);
    EXPECT_EQ(c.num_qubits(), 3);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(0).kind, GateKind::H);
    EXPECT_EQ(c.gate(2).kind, GateKind::RZ);
    EXPECT_NEAR(c.gate(2).params[0], kPi / 4, 1e-12);
}

TEST(Qasm, ParsesExpressions) {
    const Circuit c = parse_qasm("qreg q[1]; rz(-pi/2 + 0.5*2) q[0];");
    EXPECT_NEAR(c.gate(0).params[0], -kPi / 2 + 1.0, 1e-12);
}

TEST(Qasm, BroadcastAppliesToWholeRegister) {
    const Circuit c = parse_qasm("qreg q[4]; h q;");
    EXPECT_EQ(c.size(), 4u);
}

TEST(Qasm, CustomGateDefinitionExpands) {
    const std::string src = R"(
qreg q[2];
gate bell a,b { h a; cx a,b; }
bell q[0],q[1];
)";
    const Circuit c = parse_qasm(src);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.gate(0).kind, GateKind::H);
    EXPECT_EQ(c.gate(1).kind, GateKind::CX);
}

TEST(Qasm, ParameterizedCustomGate) {
    const std::string src = R"(
qreg q[1];
gate wiggle(a) x0 { rz(a/2) x0; rx(-a) x0; }
wiggle(pi) q[0];
)";
    const Circuit c = parse_qasm(src);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_NEAR(c.gate(0).params[0], kPi / 2, 1e-12);
    EXPECT_NEAR(c.gate(1).params[0], -kPi, 1e-12);
}

TEST(Qasm, U2ExpandsToU3) {
    const Circuit c = parse_qasm("qreg q[1]; u2(0, pi) q[0];");
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).kind, GateKind::U3);
    EXPECT_NEAR(c.gate(0).params[0], kPi / 2, 1e-12);
}

TEST(Qasm, ErrorsCarryLineNumbers) {
    try {
        parse_qasm("qreg q[1];\nbadgate q[0];\n");
        FAIL() << "expected QasmError";
    } catch (const QasmError& e) {
        EXPECT_GT(e.line(), 0);
    }
}

TEST(Qasm, UnknownRegisterRejected) {
    EXPECT_THROW(parse_qasm("qreg q[1]; h r[0];"), QasmError);
}

TEST(Qasm, OutOfRangeIndexRejected) {
    EXPECT_THROW(parse_qasm("qreg q[2]; h q[5];"), QasmError);
}

TEST(Qasm, RoundTripPreservesUnitary) {
    Circuit c(3);
    c.h(0).cx(0, 1).rz(0.7, 1).ccx(0, 1, 2).swap(0, 2).t(2);
    const Circuit reparsed = parse_qasm(to_qasm(c));
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(reparsed), circuit_unitary(c),
                                         1e-7));
}

TEST(Qasm, VugCannotSerialize) {
    Circuit c(2);
    c.add(Gate::make_unitary({0, 1}, random_unitary(4, std::uint64_t{1}), GateKind::VUG));
    EXPECT_THROW(to_qasm(c), std::invalid_argument);
}

} // namespace
