// Concurrent compile() safety: one EpocCompiler, shared by N caller threads,
// must produce bit-identical schedules to a sequential run of the same
// circuits. This is the contract the epocd daemon is built on — all jobs
// share one compiler (one pulse library, one synthesis cache, one plan
// cache), so identical blocks from different clients dedupe through the
// single-flight path, and nothing a concurrent caller does may perturb
// another caller's artifact.
//
// Runs under TSan in CI (the tsan-concurrency job): the assertions here catch
// value races, the sanitizer catches ordering races the values happen to
// survive.
#include "epoc/pipeline.h"

#include "bench_circuits/generators.h"
#include "epoc/export.h"
#include "qoc/pulse_io.h"
#include "util/deadline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace epoc::core;
using epoc::circuit::Circuit;

EpocOptions cheap_options(int num_threads) {
    EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.num_threads = num_threads;
    return opt;
}

std::vector<std::pair<std::string, Circuit>> seed_circuits() {
    return {
        {"ghz4", epoc::bench::ghz(4)},
        {"qft3", epoc::bench::qft(3)},
        {"bv5", epoc::bench::bv(5)},
        {"wstate", epoc::bench::wstate(4)},
    };
}

std::uint64_t digest(const EpocResult& r) {
    return epoc::qoc::fnv1a64(schedule_to_json(r.schedule));
}

TEST(ConcurrentCompile, NCallersBitIdenticalToSequential) {
    const auto circuits = seed_circuits();

    // Sequential baseline: a private single-threaded compiler per the
    // existing determinism tests' ground truth.
    std::map<std::string, std::uint64_t> baseline;
    {
        EpocCompiler seq(cheap_options(1));
        for (const auto& [name, c] : circuits) baseline[name] = digest(seq.compile(c));
    }

    // One shared compiler, hammered from every caller thread. Each caller
    // walks the circuit list from a different offset so lookups interleave:
    // some callers take the single-flight miss, others wait on it or hit.
    EpocCompiler shared(cheap_options(4));
    constexpr int kCallers = 6;
    constexpr int kRounds = 3;
    std::atomic<int> mismatches{0};
    std::atomic<int> exceptions{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                for (std::size_t i = 0; i < circuits.size(); ++i) {
                    const auto& [name, c] =
                        circuits[(i + static_cast<std::size_t>(t)) % circuits.size()];
                    try {
                        const EpocResult r = shared.compile(c);
                        if (digest(r) != baseline[name]) mismatches.fetch_add(1);
                        if (r.degraded) mismatches.fetch_add(1);
                    } catch (...) {
                        exceptions.fetch_add(1);
                    }
                }
            }
        });
    }
    for (std::thread& th : callers) th.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(exceptions.load(), 0);

    // Single-flight makes the shared library's miss count deterministic:
    // one miss per unique (unitary, hamiltonian, options) key, however many
    // callers raced on it. A sequential run of the same circuit set must see
    // the exact same number.
    EpocCompiler seq2(cheap_options(1));
    for (const auto& [name, c] : circuits) seq2.compile(c);
    EXPECT_EQ(shared.library().stats().misses, seq2.library().stats().misses);
}

TEST(ConcurrentCompile, PerCallCancelOnlyAffectsItsOwnJob) {
    // Two callers on one compiler: one with a pre-fired per-call token, one
    // without. The cancelled caller gets a degraded-but-exception-free
    // result; the clean caller's artifact is untouched.
    const Circuit c = epoc::bench::qft(3);
    std::uint64_t clean_digest = 0;
    {
        EpocCompiler seq(cheap_options(1));
        clean_digest = digest(seq.compile(c));
    }

    EpocCompiler shared(cheap_options(2));
    epoc::util::CancelToken token;
    token.cancel();

    std::atomic<int> failures{0};
    std::thread cancelled([&] {
        CompileCallOptions call;
        call.cancel = &token;
        const EpocResult r = shared.compile(c, call);
        if (!r.degraded) failures.fetch_add(1);
        if (r.status.ok()) failures.fetch_add(1);
    });
    std::thread clean([&] {
        const EpocResult r = shared.compile(c);
        if (digest(r) != clean_digest) failures.fetch_add(1);
        if (r.degraded) failures.fetch_add(1);
    });
    cancelled.join();
    clean.join();
    EXPECT_EQ(failures.load(), 0);

    // The cancelled compile must not have poisoned any cache: a fresh
    // uncancelled compile on the same shared compiler is clean.
    const EpocResult again = shared.compile(c);
    EXPECT_FALSE(again.degraded);
    EXPECT_EQ(digest(again), clean_digest);
}

TEST(ConcurrentCompile, PerCallDeadlineOverridesConfiguredBudget) {
    // The configured deadline is generous; the per-call one is zero. The
    // call-level budget must win: the compile degrades (deadline_hit) instead
    // of running to completion — and a later call without an override is back
    // on the configured budget.
    EpocOptions opt = cheap_options(1);
    opt.deadline_ms = 0.0; // unlimited default
    EpocCompiler compiler(opt);

    CompileCallOptions starved;
    starved.deadline_ms = 0.001; // effectively pre-expired
    const EpocResult r = compiler.compile(epoc::bench::qft(3), starved);
    EXPECT_TRUE(r.deadline_hit);
    EXPECT_TRUE(r.degraded);

    const EpocResult full = compiler.compile(epoc::bench::qft(3));
    EXPECT_FALSE(full.deadline_hit);
    EXPECT_FALSE(full.degraded);
}

} // namespace
