#include "qoc/crab.h"
#include "qoc/decoherence.h"
#include "qoc/grape.h"

#include "circuit/gate.h"
#include "linalg/phase.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace epoc::qoc;

TEST(Crab, ReachesXGate) {
    const auto h = make_block_hamiltonian(1);
    CrabOptions opt;
    opt.target_fidelity = 0.995;
    const Pulse p = crab_optimize(h, epoc::circuit::pauli_x(), 8, opt);
    EXPECT_GE(p.fidelity, 0.995);
    // The claimed fidelity must match the realised propagator.
    const auto u = pulse_unitary(h, p);
    EXPECT_NEAR(epoc::linalg::hs_fidelity(u, epoc::circuit::pauli_x()), p.fidelity, 1e-6);
}

TEST(Crab, ReachesHadamard) {
    const auto h = make_block_hamiltonian(1);
    CrabOptions opt;
    opt.target_fidelity = 0.995;
    const Pulse p = crab_optimize(h, epoc::circuit::hadamard(), 8, opt);
    EXPECT_GE(p.fidelity, 0.995);
}

TEST(Crab, ReachesCnotWithEnoughSlots) {
    const auto h = make_block_hamiltonian(2);
    CrabOptions opt;
    opt.target_fidelity = 0.99;
    opt.max_iterations = 500;
    const Pulse p = crab_optimize(h, epoc::circuit::kind_matrix(epoc::circuit::GateKind::CX, {}),
                                  28, opt);
    EXPECT_GE(p.fidelity, 0.99);
}

TEST(Crab, RespectsAmplitudeBounds) {
    // tanh squashing keeps every sample strictly inside the bounds.
    const auto h = make_block_hamiltonian(1);
    const Pulse p = crab_optimize(h, epoc::circuit::hadamard(), 12, {});
    for (std::size_t j = 0; j < h.controls.size(); ++j)
        for (const double a : p.amplitudes[j])
            EXPECT_LE(std::abs(a), h.controls[j].bound + 1e-12);
}

TEST(Crab, PulseIsBandLimited) {
    // CRAB's selling point: the waveform lives in a low-mode Fourier basis,
    // so each control line has at most ~num_modes oscillations regardless of
    // the slot count. Count local extrema as a band-limit proxy.
    const auto h = make_block_hamiltonian(1);
    CrabOptions opt;
    opt.num_modes = 2;
    opt.max_iterations = 150;
    const Pulse p = crab_optimize(h, epoc::circuit::pauli_x(), 64, opt);
    for (const auto& line : p.amplitudes) {
        int extrema = 0;
        for (std::size_t k = 1; k + 1 < line.size(); ++k) {
            const double dl = line[k] - line[k - 1];
            const double dr = line[k + 1] - line[k];
            if (dl * dr < -1e-18) ++extrema;
        }
        // 2 modes + DC: at most ~2*modes+1 humps across the window; allow a
        // small margin for the tanh squashing.
        EXPECT_LE(extrema, 2 * opt.num_modes + 2);
    }
}

TEST(Crab, InvalidArgumentsThrow) {
    const auto h = make_block_hamiltonian(1);
    EXPECT_THROW(crab_optimize(h, epoc::linalg::Matrix::identity(4), 8, {}),
                 std::invalid_argument);
    EXPECT_THROW(crab_optimize(h, epoc::linalg::Matrix::identity(2), 0, {}),
                 std::invalid_argument);
}

TEST(Decoherence, FactorDecaysWithDuration) {
    EXPECT_NEAR(coherence_factor(0.0), 1.0, 1e-12);
    EXPECT_LT(coherence_factor(1000.0), 1.0);
    EXPECT_LT(coherence_factor(2000.0), coherence_factor(1000.0));
}

TEST(Decoherence, InvalidTimesThrow) {
    DecoherenceParams p;
    p.t1_ns = 0.0;
    EXPECT_THROW(coherence_factor(10.0, p), std::invalid_argument);
}

TEST(Decoherence, EspPenalizesLatency) {
    epoc::core::PulseSchedule s;
    s.num_qubits = 2;
    s.esp = 0.99;
    s.latency = 500.0;
    const double with = esp_with_decoherence(s);
    EXPECT_LT(with, s.esp);
    epoc::core::PulseSchedule longer = s;
    longer.latency = 5000.0;
    EXPECT_LT(esp_with_decoherence(longer), with);
}

} // namespace
