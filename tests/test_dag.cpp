#include "circuit/dag.h"

#include "bench_circuits/generators.h"

#include <gtest/gtest.h>

namespace {

using namespace epoc::circuit;

TEST(Dag, LinearChainDependencies) {
    Circuit c(1);
    c.h(0).sx(0).h(0);
    const CircuitDag dag(c);
    EXPECT_TRUE(dag.predecessors(0).empty());
    EXPECT_EQ(dag.predecessors(1), std::vector<std::size_t>{0});
    EXPECT_EQ(dag.successors(1), std::vector<std::size_t>{2});
}

TEST(Dag, ParallelGatesHaveNoEdges) {
    Circuit c(2);
    c.h(0).h(1);
    const CircuitDag dag(c);
    EXPECT_TRUE(dag.successors(0).empty());
    EXPECT_TRUE(dag.predecessors(1).empty());
}

TEST(Dag, TwoQubitGateJoinsDependencies) {
    Circuit c(2);
    c.h(0).h(1).cx(0, 1);
    const CircuitDag dag(c);
    EXPECT_EQ(dag.predecessors(2).size(), 2u);
}

TEST(Dag, NoDuplicateEdgeForSharedQubits) {
    Circuit c(2);
    c.cx(0, 1).cx(0, 1);
    const CircuitDag dag(c);
    EXPECT_EQ(dag.successors(0).size(), 1u);
}

TEST(Dag, AsapRespectsWeights) {
    Circuit c(2);
    c.sx(0).cx(0, 1).sx(1);
    const CircuitDag dag(c);
    EXPECT_DOUBLE_EQ(dag.asap()[0], 0.0);
    EXPECT_DOUBLE_EQ(dag.asap()[1], 10.0);        // after the sx
    EXPECT_DOUBLE_EQ(dag.asap()[2], 50.0);        // after the cx
    EXPECT_DOUBLE_EQ(dag.critical_path_length(), 60.0);
}

TEST(Dag, VirtualRzIsFree) {
    Circuit c(1);
    c.rz(0.3, 0).sx(0);
    const CircuitDag dag(c);
    EXPECT_DOUBLE_EQ(dag.asap()[1], 0.0);
    EXPECT_DOUBLE_EQ(dag.critical_path_length(), 10.0);
}

TEST(Dag, CriticalGatesHaveZeroSlack) {
    Circuit c(3);
    c.sx(0).cx(0, 1).cx(1, 2).sx(2); // serial chain on the critical path
    c.sx(1);                          // slack: fits beside cx(1,2)? no, shares q1
    const CircuitDag dag(c);
    for (const std::size_t g : dag.critical_gates()) EXPECT_NEAR(dag.slack(g), 0.0, 1e-9);
    EXPECT_FALSE(dag.critical_gates().empty());
}

TEST(Dag, SlackGateOffCriticalPath) {
    Circuit c(3);
    c.cx(0, 1); // 40ns critical
    c.sx(2);    // 10ns, slack 30
    const CircuitDag dag(c);
    EXPECT_DOUBLE_EQ(dag.slack(1), 30.0);
    EXPECT_LT(dag.criticality(1), 1.0);
    EXPECT_DOUBLE_EQ(dag.criticality(0), 1.0);
}

TEST(Dag, CriticalPathLowerBoundsDepthTimesWeight) {
    const Circuit c = epoc::bench::ghz(5);
    const CircuitDag dag(c);
    // GHZ is a pure CX chain: critical path = sx-free: 10 (h) + 4*40.
    EXPECT_DOUBLE_EQ(dag.critical_path_length(), 10.0 + 4 * 40.0);
}

TEST(Dag, EmptyCircuit) {
    const Circuit c(2);
    const CircuitDag dag(c);
    EXPECT_EQ(dag.size(), 0u);
    EXPECT_DOUBLE_EQ(dag.critical_path_length(), 0.0);
}

} // namespace
