#include "linalg/eigen.h"

#include "circuit/gate.h"
#include "linalg/expm.h"
#include "linalg/random_unitary.h"
#include "qoc/hamiltonian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace {

using namespace epoc::linalg;

Matrix random_real_symmetric(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> g(0.0, 1.0);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = r; c < n; ++c) {
            a(r, c) = cplx{g(rng), 0.0};
            a(c, r) = a(r, c);
        }
    return a;
}

Matrix random_hermitian(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> g(0.0, 1.0);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        a(r, r) = cplx{g(rng), 0.0};
        for (std::size_t c = r + 1; c < n; ++c) {
            a(r, c) = cplx{g(rng), g(rng)};
            a(c, r) = std::conj(a(r, c));
        }
    }
    return a;
}

TEST(Jacobi, DiagonalMatrixIsFixedPoint) {
    Matrix d(3, 3);
    d(0, 0) = cplx{3, 0};
    d(1, 1) = cplx{-1, 0};
    d(2, 2) = cplx{2, 0};
    const SymmetricEigen e = jacobi_symmetric(d);
    EXPECT_NEAR(e.values[0], -1.0, 1e-12);
    EXPECT_NEAR(e.values[1], 2.0, 1e-12);
    EXPECT_NEAR(e.values[2], 3.0, 1e-12);
}

TEST(Jacobi, ReconstructsRandomSymmetric) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Matrix a = random_real_symmetric(5, seed);
        const SymmetricEigen e = jacobi_symmetric(a);
        Matrix d(5, 5);
        for (std::size_t j = 0; j < 5; ++j) d(j, j) = cplx{e.values[j], 0.0};
        EXPECT_LT((e.vectors * d * e.vectors.transpose()).max_abs_diff(a), 1e-9);
        EXPECT_TRUE(e.vectors.is_unitary(1e-9));
    }
}

TEST(Jacobi, EigenvaluesAscending) {
    const SymmetricEigen e = jacobi_symmetric(random_real_symmetric(6, 9));
    for (std::size_t j = 1; j < e.values.size(); ++j)
        EXPECT_LE(e.values[j - 1], e.values[j] + 1e-12);
}

TEST(Jacobi, RejectsNonSymmetric) {
    Matrix a(2, 2);
    a(0, 1) = cplx{1, 0};
    EXPECT_THROW(jacobi_symmetric(a), std::invalid_argument);
    Matrix b(2, 2);
    b(0, 0) = cplx{0, 1};
    EXPECT_THROW(jacobi_symmetric(b), std::invalid_argument);
}

TEST(HermitianEigen, ReconstructsRandomHermitian) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const std::size_t n = 3 + seed % 3;
        const Matrix h = random_hermitian(n, seed);
        const HermitianEigen e = hermitian_eigen(h);
        Matrix d(n, n);
        for (std::size_t j = 0; j < n; ++j) d(j, j) = cplx{e.values[j], 0.0};
        EXPECT_LT((e.vectors * d * e.vectors.dagger()).max_abs_diff(h), 1e-8) << seed;
        EXPECT_TRUE(e.vectors.is_unitary(1e-8)) << seed;
    }
}

TEST(HermitianEigen, HandlesDegenerateSpectrum) {
    // Pauli Z (x) I has eigenvalues {+1, +1, -1, -1}.
    const Matrix h = kron(epoc::circuit::pauli_z(), Matrix::identity(2));
    const HermitianEigen e = hermitian_eigen(h);
    Matrix d(4, 4);
    for (std::size_t j = 0; j < 4; ++j) d(j, j) = cplx{e.values[j], 0.0};
    EXPECT_LT((e.vectors * d * e.vectors.dagger()).max_abs_diff(h), 1e-8);
    EXPECT_TRUE(e.vectors.is_unitary(1e-8));
}

TEST(ExpIHermitian, MatchesPade) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Matrix h = random_hermitian(4, seed + 20);
        EXPECT_LT(exp_i_hermitian(h, 0.7).max_abs_diff(exp_i(h, 0.7)), 1e-7);
    }
}

TEST(ExpIHermitian, WorksOnBlockHamiltonian) {
    const auto bh = epoc::qoc::make_block_hamiltonian(2);
    Matrix h = bh.drift;
    for (const auto& c : bh.controls) h += c.h;
    EXPECT_LT(exp_i_hermitian(h, 2.0).max_abs_diff(exp_i(h, 2.0)), 1e-7);
}

TEST(KronFactor, ExactProductRecovered) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Matrix a = random_unitary(2, seed);
        const Matrix b = random_unitary(2, seed + 100);
        const auto f = kron_factor_2x2(kron(a, b));
        ASSERT_TRUE(f.has_value()) << seed;
        EXPECT_LT(kron(f->first, f->second).max_abs_diff(kron(a, b)), 1e-9);
    }
}

TEST(KronFactor, EntangledOperatorRejected) {
    const Matrix cx = epoc::circuit::kind_matrix(epoc::circuit::GateKind::CX, {});
    EXPECT_FALSE(kron_factor_2x2(cx).has_value());
}

TEST(KronFactor, NonExactModeReturnsClosest) {
    const Matrix cx = epoc::circuit::kind_matrix(epoc::circuit::GateKind::CX, {});
    const auto f = kron_factor_2x2(cx, /*require_exact=*/false);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->first.rows(), 2u);
}

TEST(KronFactor, WrongShapeThrows) {
    EXPECT_THROW(kron_factor_2x2(Matrix::identity(2)), std::invalid_argument);
}

} // namespace
