#include "epoc/export.h"

#include <gtest/gtest.h>

#include <limits>

namespace {

using namespace epoc::core;

PulseSchedule sample_schedule() {
    return schedule_asap(
        {
            {{0}, 10.0, 0.999, "sx"},
            {{0, 1}, 40.0, 0.995, "cx"},
            {{1}, 0.0, 1.0, "rz"},
        },
        2);
}

TEST(Export, JsonContainsTopLevelFields) {
    const std::string j = schedule_to_json(sample_schedule());
    EXPECT_NE(j.find("\"num_qubits\":2"), std::string::npos);
    EXPECT_NE(j.find("\"latency_ns\":50"), std::string::npos);
    EXPECT_NE(j.find("\"pulses\":["), std::string::npos);
}

TEST(Export, JsonListsEveryPulse) {
    const std::string j = schedule_to_json(sample_schedule());
    EXPECT_NE(j.find("\"label\":\"sx\""), std::string::npos);
    EXPECT_NE(j.find("\"label\":\"cx\""), std::string::npos);
    EXPECT_NE(j.find("\"qubits\":[0,1]"), std::string::npos);
    EXPECT_NE(j.find("\"start_ns\":10"), std::string::npos);
}

TEST(Export, JsonEscapesLabels) {
    PulseSchedule s = schedule_asap({{{0}, 1.0, 1.0, "we\"ird\\label"}}, 1);
    const std::string j = schedule_to_json(s);
    EXPECT_NE(j.find("we\\\"ird\\\\label"), std::string::npos);
}

TEST(Export, JsonEscapesControlCharacters) {
    // Tabs, carriage returns and other sub-0x20 bytes used to pass through
    // raw, which is invalid JSON.
    // Literal concatenation keeps \x01 from maximal-munching the 'e'.
    PulseSchedule s =
        schedule_asap({{{0}, 1.0, 1.0, std::string("a\tb\rc\nd\x01") + "e\x1f" "f"}}, 1);
    const std::string j = schedule_to_json(s);
    EXPECT_NE(j.find("a\\tb\\rc\\nd\\u0001e\\u001ff"), std::string::npos);
    // No raw control character may survive anywhere in the document.
    for (const char c : j) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Export, NonFiniteNumbersSerializeAsNull) {
    // A degraded schedule (the fidelity-0 placeholder path) can carry
    // non-finite intermediates; ostream would print bare `nan`/`inf` tokens,
    // which no JSON parser accepts. They must come out as null.
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    PulseSchedule s = schedule_asap(
        {
            {{0}, 10.0, kNan, "degraded"},
            {{1}, kInf, 0.5, "runaway"},
        },
        2);
    s.esp = kNan; // ESP is a product over fidelities: NaN propagates
    const std::string j = schedule_to_json(s);
    EXPECT_EQ(j.find("nan"), std::string::npos) << j;
    EXPECT_EQ(j.find("inf"), std::string::npos) << j;
    EXPECT_NE(j.find("\"fidelity\":null"), std::string::npos) << j;
    EXPECT_NE(j.find("\"esp\":null"), std::string::npos) << j;
}

TEST(Export, FiniteScheduleHasNoNulls) {
    const std::string j = schedule_to_json(sample_schedule());
    EXPECT_EQ(j.find("null"), std::string::npos) << j;
}

TEST(Export, HostileLabelKeepsJsonBalanced) {
    PulseSchedule s = schedule_asap({{{0}, 1.0, 1.0, "\x02{\"\\\t}\x1b["}}, 1);
    const std::string j = schedule_to_json(s);
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : j) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\') escaped = true;
            if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(Export, JsonBalancedBraces) {
    const std::string j = schedule_to_json(sample_schedule());
    int depth = 0;
    for (const char c : j) {
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Timeline, MarksBusySpans) {
    const std::string t = ascii_timeline(sample_schedule(), 50);
    EXPECT_NE(t.find('#'), std::string::npos);
    EXPECT_NE(t.find("q0"), std::string::npos);
    EXPECT_NE(t.find("q1"), std::string::npos);
    EXPECT_NE(t.find("50 ns"), std::string::npos);
}

TEST(Timeline, IdleQubitStaysDotted) {
    const PulseSchedule s = schedule_asap({{{0}, 10.0, 1.0, "sx"}}, 2);
    const std::string t = ascii_timeline(s, 20);
    // Second row (q1) is all dots.
    const std::size_t q1 = t.find("q1");
    ASSERT_NE(q1, std::string::npos);
    const std::size_t bar = t.find('|', q1);
    const std::size_t end = t.find('|', bar + 1);
    EXPECT_EQ(t.substr(bar + 1, end - bar - 1).find('#'), std::string::npos);
}

TEST(Timeline, EmptyScheduleHandled) {
    PulseSchedule s;
    EXPECT_EQ(ascii_timeline(s), "(empty schedule)\n");
}

TEST(Timeline, TinyColumnCountsClampedNotUnderflowed) {
    // columns < 2 used to underflow `columns - 2` as size_t in the axis
    // footer, attempting a multi-gigabyte string.
    const PulseSchedule s = sample_schedule();
    for (const int columns : {1, 0, -3, 2}) {
        const std::string t = ascii_timeline(s, columns);
        EXPECT_LT(t.size(), 1000u) << "columns=" << columns;
        EXPECT_NE(t.find('#'), std::string::npos) << "columns=" << columns;
        EXPECT_NE(t.find("50 ns"), std::string::npos) << "columns=" << columns;
    }
}

} // namespace
