#include "bench_circuits/generators.h"
#include "bench_circuits/random_circuits.h"

#include "circuit/unitary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace {

using namespace epoc::bench;
using epoc::circuit::circuit_unitary;
using epoc::circuit::run_statevector;

TEST(Generators, GhzPreparesGhzState) {
    const auto psi = run_statevector(ghz(4));
    EXPECT_NEAR(std::abs(psi[0]), 1.0 / std::sqrt(2.0), 1e-10);
    EXPECT_NEAR(std::abs(psi[15]), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(Generators, BvRecoversSecret) {
    // After BV, measuring the data register yields the secret bits exactly.
    const std::uint64_t secret = 0b1011;
    const auto psi = run_statevector(bv(4, secret));
    // Data register state index == secret, ancilla in (|0>-|1>)/sqrt(2) after
    // final H => superposition over ancilla bit only.
    double prob = 0.0;
    for (int anc = 0; anc < 2; ++anc)
        prob += std::norm(psi[secret + (static_cast<std::uint64_t>(anc) << 4)]);
    EXPECT_NEAR(prob, 1.0, 1e-10);
}

TEST(Generators, WstateIsUniformOneHot) {
    const int n = 4;
    const auto psi = run_statevector(wstate(n));
    double onehot = 0.0;
    for (int q = 0; q < n; ++q) onehot += std::norm(psi[std::size_t{1} << q]);
    EXPECT_NEAR(onehot, 1.0, 1e-8);
    for (int q = 0; q < n; ++q)
        EXPECT_NEAR(std::norm(psi[std::size_t{1} << q]), 1.0 / n, 1e-8);
}

TEST(Generators, QftOnBasisStateGivesUniformMagnitudes) {
    const auto u = circuit_unitary(qft(3));
    for (std::size_t r = 0; r < 8; ++r)
        EXPECT_NEAR(std::abs(u(r, 0)), 1.0 / std::sqrt(8.0), 1e-10);
    EXPECT_TRUE(u.is_unitary(1e-9));
}

TEST(Generators, AdderAddsBasisStates) {
    // n=2: a=01, b=01 -> b should become 10 (a unchanged).
    const int n = 2;
    auto c = epoc::circuit::Circuit(2 * n + 2);
    c.x(0);     // a = 1
    c.x(n);     // b = 1
    c.append(adder(n));
    const auto psi = run_statevector(c);
    // expected: a=01 (bit0), b=10 (bit n+1), carries 0.
    const std::size_t expect = (std::size_t{1} << 0) | (std::size_t{1} << (n + 1));
    EXPECT_NEAR(std::norm(psi[expect]), 1.0, 1e-8);
}

TEST(Generators, GroverAmplifiesMarkedState) {
    const int n = 3;
    const auto psi = run_statevector(grover(n, 1));
    // Marked state |111>; one iteration on 3 qubits boosts it well above
    // uniform probability 1/8.
    EXPECT_GT(std::norm(psi[7]), 0.5);
}

TEST(Generators, QpeEstimatesPhase) {
    const int bits = 3;
    const auto psi = run_statevector(qpe(bits));
    // theta = 1/5 => the most likely readout is round(0.2 * 8) = 2.
    double best_prob = 0.0;
    std::size_t best = 0;
    for (std::size_t k = 0; k < (std::size_t{1} << bits); ++k) {
        // System qubit is |1> throughout.
        const double pr = std::norm(psi[k + (std::size_t{1} << bits)]);
        if (pr > best_prob) {
            best_prob = pr;
            best = k;
        }
    }
    EXPECT_EQ(best, 2u);
}

TEST(Generators, AllSuiteCircuitsAreValid) {
    for (const auto& [name, c] : figure_suite()) {
        EXPECT_GT(c.size(), 0u) << name;
        EXPECT_GE(c.num_qubits(), 2) << name;
        EXPECT_LE(c.num_qubits(), 8) << name;
    }
    EXPECT_EQ(figure_suite().size(), 17u);
    EXPECT_EQ(table1_suite().size(), 7u);
}

TEST(Generators, SuiteNamesAreUnique) {
    std::set<std::string> names;
    for (const auto& [name, c] : figure_suite()) EXPECT_TRUE(names.insert(name).second);
}

TEST(Generators, Table1MatchesPaperRows) {
    const auto t = table1_suite();
    EXPECT_EQ(t[0].name, "simon");
    EXPECT_EQ(t[1].name, "bb84");
    EXPECT_EQ(t[2].name, "bv");
    EXPECT_EQ(t[3].name, "qaoa");
    EXPECT_EQ(t[4].name, "decod24");
    EXPECT_EQ(t[5].name, "dnn");
    EXPECT_EQ(t[6].name, "ham7");
}

TEST(Generators, QecCorrectsInjectedError) {
    // With an X error injected on q1, the decoder must restore the logical
    // state; syndrome ancillas (q3, q4) read (1,1).
    const auto psi = run_statevector(qec_bit_flip(true));
    const double a = std::cos(0.3), b = std::sin(0.3); // ry(0.6) amplitudes
    const std::size_t anc = (1u << 3) | (1u << 4);
    EXPECT_NEAR(std::abs(psi[anc + 0]), a, 1e-9);
    EXPECT_NEAR(std::abs(psi[anc + 7]), b, 1e-9);
}

TEST(Generators, QecNoErrorLeavesCleanSyndrome) {
    const auto psi = run_statevector(qec_bit_flip(false));
    const double a = std::cos(0.3), b = std::sin(0.3);
    EXPECT_NEAR(std::abs(psi[0]), a, 1e-9);
    EXPECT_NEAR(std::abs(psi[7]), b, 1e-9);
}

TEST(Generators, DeutschJozsaBalancedOracleGivesAllOnes) {
    // A balanced oracle must leave zero amplitude on the all-zero readout.
    const int n = 4;
    const auto psi = run_statevector(deutsch_jozsa(n));
    double p_zero = 0.0;
    for (int anc = 0; anc < 2; ++anc)
        p_zero += std::norm(psi[static_cast<std::size_t>(anc) << n]);
    EXPECT_NEAR(p_zero, 0.0, 1e-10);
}

TEST(Generators, HiddenShiftRecoversShift) {
    const std::uint64_t shift = 0b0110;
    const auto psi = run_statevector(hidden_shift(4, shift));
    EXPECT_NEAR(std::norm(psi[shift]), 1.0, 1e-9);
}

TEST(Generators, HiddenShiftRequiresEvenWidth) {
    EXPECT_THROW(hidden_shift(3), std::invalid_argument);
}

TEST(Generators, RandomCircuitRespectsSpec) {
    RandomCircuitSpec spec;
    spec.num_qubits = 5;
    spec.num_gates = 33;
    spec.seed = 9;
    const auto c = random_circuit(spec);
    EXPECT_EQ(c.num_qubits(), 5);
    EXPECT_EQ(c.size(), 33u);
}

TEST(Generators, RandomCircuitDeterministicPerSeed) {
    RandomCircuitSpec spec;
    spec.seed = 4;
    const auto a = random_circuit(spec);
    const auto b = random_circuit(spec);
    EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(Generators, CliffordOnlyRandomCircuitHasNoT) {
    RandomCircuitSpec spec;
    spec.non_clifford_fraction = 0.0;
    spec.num_gates = 60;
    const auto c = random_circuit(spec);
    EXPECT_EQ(c.t_count(), 0u);
}

} // namespace
