#include "synthesis/kak.h"

#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "linalg/random_unitary.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace epoc::synthesis;
using epoc::circuit::Circuit;
using epoc::circuit::circuit_unitary;
using epoc::circuit::GateKind;
using epoc::linalg::equal_up_to_global_phase;
using epoc::linalg::kron;
using epoc::linalg::Matrix;
using epoc::linalg::random_unitary;

void expect_kak(const Matrix& u, const char* what) {
    const Circuit c = kak_synthesize(u);
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(c), u, 1e-6)) << what;
}

TEST(Kak, Identity) { expect_kak(Matrix::identity(4), "identity"); }

TEST(Kak, ProductUnitary) {
    const Matrix u = kron(random_unitary(2, std::uint64_t{1}),
                          random_unitary(2, std::uint64_t{2}));
    const KakDecomposition k = kak_decompose(u);
    EXPECT_NEAR(k.cx, 0.0, 1e-7);
    EXPECT_NEAR(k.cy, 0.0, 1e-7);
    EXPECT_NEAR(k.cz, 0.0, 1e-7);
    expect_kak(u, "product");
}

TEST(Kak, CnotHasQuarterPiInteraction) {
    const Matrix cx = epoc::circuit::kind_matrix(GateKind::CX, {});
    const KakDecomposition k = kak_decompose(cx);
    // CNOT is locally equivalent to exp(i pi/4 XX): exactly one coefficient
    // of magnitude pi/4 (up to Weyl-chamber symmetry).
    const double mags[3] = {std::abs(k.cx), std::abs(k.cy), std::abs(k.cz)};
    int quarter = 0, zero = 0;
    for (const double m : mags) {
        if (std::abs(m - 3.14159265358979312 / 4) < 1e-6) ++quarter;
        if (m < 1e-6) ++zero;
    }
    EXPECT_EQ(quarter, 1);
    EXPECT_EQ(zero, 2);
    expect_kak(cx, "cnot");
}

TEST(Kak, FixedTwoQubitGates) {
    for (const GateKind kind : {GateKind::CZ, GateKind::SWAP, GateKind::ISWAP,
                                GateKind::CY, GateKind::CH}) {
        expect_kak(epoc::circuit::kind_matrix(kind, {}), epoc::circuit::kind_name(kind).c_str());
    }
}

TEST(Kak, ParameterizedTwoQubitGates) {
    for (const double th : {0.3, -1.2, 2.9}) {
        expect_kak(epoc::circuit::kind_matrix(GateKind::RZZ, {th}), "rzz");
        expect_kak(epoc::circuit::kind_matrix(GateKind::RXX, {th}), "rxx");
        expect_kak(epoc::circuit::kind_matrix(GateKind::CP, {th}), "cp");
        expect_kak(epoc::circuit::kind_matrix(GateKind::CRY, {th}), "cry");
    }
}

class KakRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KakRandom, HaarUnitaryRoundTrip) {
    expect_kak(random_unitary(4, GetParam() * 97 + 13), "haar");
}

INSTANTIATE_TEST_SUITE_P(Seeds, KakRandom,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{40}));

TEST(Kak, PhaseShiftedInputSameCanonicalClass) {
    // The interaction content is a local invariant; compare via the
    // Weyl-lattice-invariant magnitudes min(|c|, pi/2 - |c|), sorted
    // (coefficients themselves are only unique up to chamber symmetries).
    const auto invariants = [](const KakDecomposition& k) {
        std::vector<double> v;
        for (const double c : {k.cx, k.cy, k.cz}) {
            const double a = std::abs(c);
            v.push_back(std::min(a, 3.14159265358979312 / 2 - a));
        }
        std::sort(v.begin(), v.end());
        return v;
    };
    const Matrix u = random_unitary(4, std::uint64_t{5});
    Matrix shifted = u;
    shifted *= std::polar(1.0, 0.777);
    const auto a = invariants(kak_decompose(u));
    const auto b = invariants(kak_decompose(shifted));
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(Kak, RejectsBadInput) {
    EXPECT_THROW(kak_decompose(Matrix::identity(2)), std::invalid_argument);
    Matrix not_unitary(4, 4);
    not_unitary(0, 0) = epoc::linalg::cplx{2.0, 0.0};
    EXPECT_THROW(kak_decompose(not_unitary), std::invalid_argument);
}

TEST(Kak, CircuitUsesOnlyLocalAndIsingGates) {
    const Circuit c = kak_synthesize(random_unitary(4, std::uint64_t{31}));
    for (const auto& g : c.gates()) {
        EXPECT_TRUE(g.kind == GateKind::U3 || g.kind == GateKind::RXX ||
                    g.kind == GateKind::RYY || g.kind == GateKind::RZZ)
            << epoc::circuit::kind_name(g.kind);
    }
}

} // namespace
