#include "linalg/expm.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/phase.h"
#include "linalg/qr.h"
#include "linalg/random_unitary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace {

using namespace epoc::linalg;

constexpr double kTol = 1e-9;

TEST(Matrix, IdentityAndBasicOps) {
    const Matrix i3 = Matrix::identity(3);
    EXPECT_EQ(i3.rows(), 3u);
    EXPECT_EQ(i3(0, 0), (cplx{1, 0}));
    EXPECT_EQ(i3(0, 1), (cplx{0, 0}));
    EXPECT_NEAR(std::abs(i3.trace() - cplx{3.0, 0.0}), 0.0, kTol);
    EXPECT_NEAR(i3.frobenius_norm(), std::sqrt(3.0), kTol);
}

TEST(Matrix, InitializerListAndRaggedThrows) {
    const Matrix m{{cplx{1, 0}, cplx{2, 0}}, {cplx{3, 0}, cplx{4, 0}}};
    EXPECT_EQ(m(1, 0), (cplx{3, 0}));
    EXPECT_THROW((Matrix{{cplx{1, 0}}, {cplx{1, 0}, cplx{2, 0}}}), std::invalid_argument);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
    const Matrix a{{cplx{1, 0}, cplx{2, 0}}, {cplx{0, 1}, cplx{0, 0}}};
    const Matrix b{{cplx{0, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{0, 0}}};
    const Matrix c = a * b;
    EXPECT_NEAR(std::abs(c(0, 0) - cplx{2.0, 0.0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(c(0, 1) - cplx{1.0, 0.0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(c(1, 0) - cplx{0.0, 0.0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(c(1, 1) - cplx{0.0, 1.0}), 0.0, kTol);
}

TEST(Matrix, ShapeMismatchThrows) {
    const Matrix a(2, 3), b(2, 3);
    EXPECT_THROW(a * b, std::invalid_argument);
    Matrix c(2, 2);
    EXPECT_THROW(c += a, std::invalid_argument);
    EXPECT_THROW(a.trace(), std::invalid_argument);
}

TEST(Matrix, DaggerIsConjugateTranspose) {
    const Matrix a{{cplx{1, 2}, cplx{3, 4}}, {cplx{5, 6}, cplx{7, 8}}};
    const Matrix d = a.dagger();
    EXPECT_EQ(d(0, 1), (cplx{5, -6}));
    EXPECT_EQ(d(1, 0), (cplx{3, -4}));
}

TEST(Matrix, KronDimensionsAndValues) {
    const Matrix x{{cplx{0, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{0, 0}}};
    const Matrix i2 = Matrix::identity(2);
    const Matrix k = kron(i2, x);
    EXPECT_EQ(k.rows(), 4u);
    // kron(I, X) is block-diagonal with X blocks.
    EXPECT_EQ(k(0, 1), (cplx{1, 0}));
    EXPECT_EQ(k(2, 3), (cplx{1, 0}));
    EXPECT_EQ(k(0, 3), (cplx{0, 0}));
}

TEST(Matrix, KronAllOfEmptyIsScalarIdentity) {
    const Matrix k = kron_all({});
    EXPECT_EQ(k.rows(), 1u);
    EXPECT_EQ(k(0, 0), (cplx{1, 0}));
}

TEST(Matrix, MatrixVectorProduct) {
    const Matrix a{{cplx{1, 0}, cplx{2, 0}}, {cplx{3, 0}, cplx{4, 0}}};
    const std::vector<cplx> v{cplx{1, 0}, cplx{1, 0}};
    const auto r = a * v;
    EXPECT_NEAR(std::abs(r[0] - cplx{3.0, 0.0}), 0.0, kTol);
    EXPECT_NEAR(std::abs(r[1] - cplx{7.0, 0.0}), 0.0, kTol);
}

TEST(Lu, SolveRoundTrip) {
    std::mt19937_64 rng(7);
    std::normal_distribution<double> g(0.0, 1.0);
    Matrix a(5, 5);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c) a(r, c) = cplx{g(rng), g(rng)};
    const Matrix x_true = Matrix::identity(5);
    const Matrix b = a * x_true;
    const Matrix x = solve(a, b);
    EXPECT_LT(x.max_abs_diff(x_true), 1e-8);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
    std::mt19937_64 rng(11);
    const Matrix u = random_unitary(8, rng);
    const Matrix inv = inverse(u);
    EXPECT_LT((inv * u).max_abs_diff(Matrix::identity(8)), 1e-9);
    // For a unitary the inverse is the dagger.
    EXPECT_LT(inv.max_abs_diff(u.dagger()), 1e-9);
}

TEST(Lu, SingularMatrixDetected) {
    Matrix a(2, 2);
    a(0, 0) = a(1, 1) = a(0, 1) = a(1, 0) = cplx{1.0, 0.0};
    const auto f = lu_decompose(a);
    EXPECT_TRUE(f.singular);
    EXPECT_THROW(solve(a, Matrix::identity(2)), std::domain_error);
    EXPECT_NEAR(std::abs(determinant(a)), 0.0, kTol);
}

TEST(Lu, DeterminantOfDiagonal) {
    Matrix a(3, 3);
    a(0, 0) = cplx{2, 0};
    a(1, 1) = cplx{0, 1};
    a(2, 2) = cplx{3, 0};
    EXPECT_NEAR(std::abs(determinant(a) - cplx{0.0, 6.0}), 0.0, 1e-9);
}

TEST(Expm, ZeroMatrixGivesIdentity) {
    const Matrix z(4, 4);
    EXPECT_LT(expm(z).max_abs_diff(Matrix::identity(4)), kTol);
}

TEST(Expm, DiagonalMatrix) {
    Matrix a(2, 2);
    a(0, 0) = cplx{1.0, 0.0};
    a(1, 1) = cplx{0.0, std::numbers::pi};
    const Matrix e = expm(a);
    EXPECT_NEAR(std::abs(e(0, 0) - cplx{std::exp(1.0), 0.0}), 0.0, 1e-10);
    EXPECT_NEAR(std::abs(e(1, 1) - cplx{-1.0, 0.0}), 0.0, 1e-10);
}

TEST(Expm, PauliXRotation) {
    // exp(-i * (theta/2) * X) = RX(theta).
    Matrix x(2, 2);
    x(0, 1) = x(1, 0) = cplx{1, 0};
    const double theta = 0.7;
    const Matrix u = exp_i(x, theta / 2);
    EXPECT_NEAR(std::abs(u(0, 0) - cplx{std::cos(theta / 2), 0.0}), 0.0, 1e-10);
    EXPECT_NEAR(std::abs(u(0, 1) - cplx{0.0, -std::sin(theta / 2)}), 0.0, 1e-10);
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
    // exp(-i * a * Z) has closed form even for large a.
    Matrix z(2, 2);
    z(0, 0) = cplx{1, 0};
    z(1, 1) = cplx{-1, 0};
    const double a = 50.0;
    const Matrix u = exp_i(z, a);
    EXPECT_NEAR(std::abs(u(0, 0) - std::polar(1.0, -a)), 0.0, 1e-8);
    EXPECT_NEAR(std::abs(u(1, 1) - std::polar(1.0, a)), 0.0, 1e-8);
}

TEST(Expm, AntiHermitianGivesUnitary) {
    std::mt19937_64 rng(3);
    std::normal_distribution<double> g(0.0, 1.0);
    Matrix h(6, 6);
    for (std::size_t r = 0; r < 6; ++r) {
        h(r, r) = cplx{g(rng), 0.0};
        for (std::size_t c = r + 1; c < 6; ++c) {
            h(r, c) = cplx{g(rng), g(rng)};
            h(c, r) = std::conj(h(r, c));
        }
    }
    EXPECT_TRUE(exp_i(h, 1.3).is_unitary(1e-8));
}

TEST(Qr, ReconstructsInput) {
    std::mt19937_64 rng(5);
    std::normal_distribution<double> g(0.0, 1.0);
    Matrix a(6, 6);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c) a(r, c) = cplx{g(rng), g(rng)};
    const auto f = qr_decompose(a);
    EXPECT_TRUE(f.q.is_unitary(1e-9));
    EXPECT_LT((f.q * f.r).max_abs_diff(a), 1e-9);
    // R upper triangular.
    for (std::size_t r = 1; r < 6; ++r)
        for (std::size_t c = 0; c < r; ++c) EXPECT_LT(std::abs(f.r(r, c)), 1e-9);
}

class RandomUnitarySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomUnitarySizes, ProducesUnitary) {
    std::mt19937_64 rng(42 + GetParam());
    const Matrix u = random_unitary(GetParam(), rng);
    EXPECT_TRUE(u.is_unitary(1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomUnitarySizes, ::testing::Values(1, 2, 4, 8, 16));

TEST(RandomUnitary, SpecialUnitaryHasUnitDeterminant) {
    std::mt19937_64 rng(9);
    const Matrix u = random_special_unitary(4, rng);
    EXPECT_TRUE(u.is_unitary(1e-9));
    EXPECT_NEAR(std::abs(determinant(u) - cplx{1.0, 0.0}), 0.0, 1e-8);
}

TEST(RandomUnitary, SeededOverloadIsDeterministic) {
    const Matrix a = random_unitary(4, std::uint64_t{123});
    const Matrix b = random_unitary(4, std::uint64_t{123});
    EXPECT_LT(a.max_abs_diff(b), 0.0 + kTol);
}

TEST(Phase, FidelityOfPhaseShiftedCopiesIsOne) {
    std::mt19937_64 rng(17);
    const Matrix u = random_unitary(4, rng);
    const Matrix v = std::polar(1.0, 1.234) * u;
    EXPECT_NEAR(hs_fidelity(u, v), 1.0, 1e-10);
    EXPECT_NEAR(phase_invariant_distance(u, v), 0.0, 1e-6);
    EXPECT_TRUE(equal_up_to_global_phase(u, v));
}

TEST(Phase, DistinctUnitariesHavePositiveDistance) {
    std::mt19937_64 rng(19);
    const Matrix u = random_unitary(4, rng);
    const Matrix v = random_unitary(4, rng);
    EXPECT_GT(phase_invariant_distance(u, v), 0.1);
    EXPECT_FALSE(equal_up_to_global_phase(u, v));
}

TEST(Phase, CanonicalKeyIdentifiesPhaseClass) {
    std::mt19937_64 rng(23);
    const Matrix u = random_unitary(4, rng);
    const Matrix v = std::polar(1.0, -2.1) * u;
    EXPECT_EQ(phase_canonical_key(u), phase_canonical_key(v));
    EXPECT_NE(raw_key(u), raw_key(v));
}

TEST(Phase, KeysOfDifferentUnitariesDiffer) {
    const Matrix a = random_unitary(4, std::uint64_t{1});
    const Matrix b = random_unitary(4, std::uint64_t{2});
    EXPECT_NE(phase_canonical_key(a), phase_canonical_key(b));
}

TEST(Phase, CanonicalFormHasRealPositiveDominantEntry) {
    const Matrix u = random_unitary(8, std::uint64_t{31});
    const Matrix c = canonicalize_global_phase(u);
    double best = -1.0;
    cplx ref;
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t col = 0; col < 8; ++col)
            if (std::abs(c(r, col)) > best + 1e-12) {
                best = std::abs(c(r, col));
                ref = c(r, col);
            }
    EXPECT_NEAR(ref.imag(), 0.0, 1e-9);
    EXPECT_GT(ref.real(), 0.0);
}

} // namespace
