#include "opt/adam.h"
#include "opt/lbfgs.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace epoc::opt;

// f(x) = sum (x_i - i)^2: smooth convex bowl.
double bowl(const std::vector<double>& x, std::vector<double>& g) {
    g.assign(x.size(), 0.0);
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - static_cast<double>(i);
        f += d * d;
        g[i] = 2 * d;
    }
    return f;
}

// Rosenbrock: the classic curved-valley stress test.
double rosenbrock(const std::vector<double>& x, std::vector<double>& g) {
    const double a = 1.0, b = 100.0;
    g.assign(2, 0.0);
    const double f = (a - x[0]) * (a - x[0]) + b * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0]);
    g[0] = -2 * (a - x[0]) - 4 * b * x[0] * (x[1] - x[0] * x[0]);
    g[1] = 2 * b * (x[1] - x[0] * x[0]);
    return f;
}

TEST(Lbfgs, SolvesQuadraticBowl) {
    const auto res = lbfgs_minimize(bowl, {5.0, -3.0, 10.0, 0.0});
    EXPECT_TRUE(res.converged);
    for (std::size_t i = 0; i < res.x.size(); ++i)
        EXPECT_NEAR(res.x[i], static_cast<double>(i), 1e-5);
}

TEST(Lbfgs, SolvesRosenbrock) {
    LbfgsOptions opt;
    opt.max_iterations = 2000; // the banana valley costs ~700 iterations
    const auto res = lbfgs_minimize(rosenbrock, {-1.2, 1.0}, opt);
    EXPECT_NEAR(res.x[0], 1.0, 1e-4);
    EXPECT_NEAR(res.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, TargetValueStopsEarly) {
    LbfgsOptions opt;
    opt.target_value = 1.0;
    const auto res = lbfgs_minimize(bowl, {100.0}, opt);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.value, 1.0 + 1e-9);
}

TEST(Lbfgs, AlreadyAtMinimum) {
    const auto res = lbfgs_minimize(bowl, {0.0, 1.0, 2.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.value, 0.0, 1e-12);
}

TEST(Adam, SolvesQuadraticBowl) {
    AdamOptions opt;
    opt.max_iterations = 3000;
    opt.learning_rate = 0.1;
    const auto res = adam_minimize(bowl, {4.0, -2.0}, opt);
    EXPECT_NEAR(res.x[0], 0.0, 1e-2);
    EXPECT_NEAR(res.x[1], 1.0, 1e-2);
}

TEST(Adam, TargetValueStopsEarly) {
    AdamOptions opt;
    opt.target_value = 0.5;
    opt.max_iterations = 10000;
    opt.learning_rate = 0.2;
    const auto res = adam_minimize(bowl, {30.0}, opt);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.value, 0.5 + 1e-9);
}

TEST(Adam, KeepsBestIterate) {
    // Even with an oversized learning rate the returned point must be the
    // best seen, never worse than the start.
    AdamOptions opt;
    opt.learning_rate = 5.0;
    opt.max_iterations = 50;
    std::vector<double> g;
    const double f0 = bowl({7.0}, g);
    const auto res = adam_minimize(bowl, {7.0}, opt);
    EXPECT_LE(res.value, f0);
}

} // namespace
