// Pack-segment pulse-store tier (store/pack.h + the PulseStore layering):
//
//   * codec: write_pack round-trips every entry to the bit, first-wins dedup,
//     deterministic bytes, deep_verify as the ingest gate;
//   * corruption robustness: EVERY prefix truncation of a pack file is
//     rejected at open (and quarantined by the store), in-place payload
//     damage opens but trips the per-entry checksum on lookup, an embedded
//     key that disagrees with its index row is corruption — all of it a
//     miss + suspect + quarantine, never UB, never a poisoned hit;
//   * layering: loose entries shadow packs, invalidate() denylists pack keys
//     without touching the read-only file, a fresh write lifts the deny;
//   * compaction: pack_on_compact folds evicted loose entries into a local
//     segment that keeps serving them; quarantine/ shares the byte budget
//     and is evicted first; stale *.pack.tmp litter is swept at startup;
//   * concurrency: two libraries over one local tier layered on one
//     read-only pack under an 8-thread hammer — the pack file is never
//     modified;
//   * the compile-level guarantee: a cold start with only a pack does zero
//     GRAPE work and is bit-identical to the warm baseline; a doctored pack
//     and chaos over every store.pack.* fault site still end bit-identical
//     to a pack-less cold compile.
#include "store/pack.h"
#include "store/pulse_store.h"

#include "bench_circuits/generators.h"
#include "circuit/gate.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"
#include "util/fault_injection.h"
#include "util/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <complex>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

namespace {

namespace fs = std::filesystem;
using namespace epoc;
using namespace epoc::qoc;
using epoc::linalg::Matrix;
using epoc::store::PackEntry;
using epoc::store::PackReader;
using epoc::store::PulseStore;
using epoc::store::PulseStoreOptions;

std::uint64_t test_pid() {
#ifdef __unix__
    return static_cast<std::uint64_t>(::getpid());
#else
    return 0;
#endif
}

/// Unique per-test scratch directory, removed on destruction. ctest runs the
/// suite in parallel, so names carry the pid plus a process-local counter.
struct TempDir {
    fs::path path;
    TempDir() {
        static std::atomic<int> counter{0};
        path = fs::temp_directory_path() /
               ("epoc-pack-test-" + std::to_string(test_pid()) + "-" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
};

/// Disarm the fault harness however a test exits.
struct FaultGuard {
    ~FaultGuard() { util::fault::clear(); }
};

bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

std::size_t count_entries(const fs::path& dir) {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file() && e.path().extension() == ".pulse") ++n;
    return n;
}

std::size_t quarantined_count(const fs::path& dir) {
    const fs::path q = dir / "quarantine";
    if (!fs::is_directory(q)) return 0;
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(q))
        if (e.is_regular_file()) ++n;
    return n;
}

/// A result with every field set to something distinctive (see test_store).
LatencyResult sample_result(double salt = 0.0) {
    LatencyResult r;
    r.pulse.amplitudes = {
        {0.1 + salt, -0.25, 5e-324 /* subnormal */, -0.0},
        {1.0 / 3.0, std::numeric_limits<double>::max(), 0.0, 42.5},
    };
    r.pulse.dt = 2.0000000000000004;
    r.pulse.fidelity = 0.99712345678901234;
    r.pulse.grape_iterations = 137;
    r.grape_runs = 9;
    r.feasible = true;
    return r;
}

void expect_result_bits_equal(const LatencyResult& a, const LatencyResult& b) {
    ASSERT_EQ(a.pulse.amplitudes.size(), b.pulse.amplitudes.size());
    for (std::size_t j = 0; j < a.pulse.amplitudes.size(); ++j) {
        ASSERT_EQ(a.pulse.amplitudes[j].size(), b.pulse.amplitudes[j].size());
        for (std::size_t k = 0; k < a.pulse.amplitudes[j].size(); ++k)
            EXPECT_TRUE(same_bits(a.pulse.amplitudes[j][k], b.pulse.amplitudes[j][k]))
                << "line " << j << " slot " << k;
    }
    EXPECT_TRUE(same_bits(a.pulse.dt, b.pulse.dt));
    EXPECT_TRUE(same_bits(a.pulse.fidelity, b.pulse.fidelity));
    EXPECT_EQ(a.pulse.grape_iterations, b.pulse.grape_iterations);
    EXPECT_EQ(a.grape_runs, b.grape_runs);
    EXPECT_EQ(a.feasible, b.feasible);
}

/// Cheap search settings so tests spend time in the store, not GRAPE.
LatencySearchOptions cheap_search() {
    LatencySearchOptions opt;
    opt.fidelity_threshold = 0.5;
    opt.max_slots = 8;
    opt.grape.max_iterations = 25;
    return opt;
}

/// Member k of phase-equivalence class `cls` (see test_store).
Matrix class_member(int cls, int k) {
    Matrix u = circuit::kind_matrix(circuit::GateKind::RZ, {0.1 + 0.37 * cls});
    u *= std::polar(1.0, 0.211 * k);
    return u;
}

/// The in-process equivalent of `epoc_pack create`: fold a store directory's
/// loose entries into one pack file (sorted for deterministic bytes).
std::size_t build_pack_from_store(const fs::path& store_dir, const fs::path& out) {
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(store_dir))
        if (e.is_regular_file() && e.path().extension() == ".pulse")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    std::vector<PackEntry> entries;
    for (const fs::path& p : files)
        if (std::optional<PackEntry> pe = PulseStore::read_entry_file(p))
            entries.push_back(std::move(*pe));
    const std::size_t count = entries.size();
    EXPECT_TRUE(epoc::store::write_pack(out, std::move(entries)));
    return count;
}

/// The in-process equivalent of `epoc_pack corrupt-for-test`: flip one
/// payload byte in every record without re-checksumming, so the pack still
/// opens but any lookup trips the per-entry checksum.
void doctor_pack(const fs::path& path) {
    std::shared_ptr<PackReader> pack = PackReader::open(path);
    ASSERT_NE(pack, nullptr);
    std::vector<std::uint64_t> targets;
    std::uint64_t cursor = 8 + 4 + 8 + 8; // header; records follow
    const bool clean = pack->for_each([&](const std::string& key,
                                          const std::string& payload) {
        const std::uint64_t payload_at = cursor + 8 + key.size() + 8;
        if (!payload.empty()) targets.push_back(payload_at);
        cursor = payload_at + payload.size() + 8;
        return true;
    });
    ASSERT_TRUE(clean);
    ASSERT_FALSE(targets.empty());
    pack.reset(); // drop the mapping before writing in place
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    for (const std::uint64_t at : targets) {
        f.seekg(static_cast<std::streamoff>(at));
        char b = 0;
        ASSERT_TRUE(static_cast<bool>(f.read(&b, 1)));
        b = static_cast<char>(b ^ 0x5a);
        f.seekp(static_cast<std::streamoff>(at));
        ASSERT_TRUE(static_cast<bool>(f.write(&b, 1)));
    }
}

std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

// ------------------------------------------------------------- pack codec

TEST(PackUnit, WriteReadRoundTripsAndDedupsFirstWins) {
    TempDir dir;
    const fs::path out = dir.path / "lib.pack";
    const LatencyResult r0 = sample_result(0.0);
    const LatencyResult r1 = sample_result(1.0);
    const LatencyResult shadow = sample_result(7.0);
    std::vector<PackEntry> entries = {
        {"key|zero", encode_latency_result(r0)},
        {"key|one", encode_latency_result(r1)},
        {"key|zero", encode_latency_result(shadow)}, // duplicate: must lose
    };
    ASSERT_TRUE(epoc::store::write_pack(out, entries));

    std::shared_ptr<PackReader> pack = PackReader::open(out);
    ASSERT_NE(pack, nullptr);
    EXPECT_EQ(pack->entry_count(), 2u) << "duplicate key must dedup first-wins";
    EXPECT_EQ(pack->size_bytes(), fs::file_size(out));
    EXPECT_FALSE(pack->suspect());

    bool corrupt = false;
    const std::optional<LatencyResult> zero = pack->find("key|zero", &corrupt);
    ASSERT_TRUE(zero.has_value());
    EXPECT_FALSE(corrupt);
    expect_result_bits_equal(r0, *zero); // first wins, not the shadow
    const std::optional<LatencyResult> one = pack->find("key|one");
    ASSERT_TRUE(one.has_value());
    expect_result_bits_equal(r1, *one);

    // A missing key is a plain miss: no corruption, no suspect.
    EXPECT_FALSE(pack->find("key|absent", &corrupt).has_value());
    EXPECT_FALSE(corrupt);
    EXPECT_FALSE(pack->suspect());
    EXPECT_TRUE(pack->contains_hash(fnv1a64("key|one")));
    EXPECT_FALSE(pack->contains_hash(fnv1a64("key|absent")));

    // for_each walks records in file (write) order; deep_verify is clean.
    std::vector<std::string> keys;
    EXPECT_TRUE(pack->for_each([&](const std::string& k, const std::string&) {
        keys.push_back(k);
        return true;
    }));
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "key|zero");
    EXPECT_EQ(keys[1], "key|one");
    EXPECT_TRUE(pack->deep_verify());

    // Same entries -> same bytes: packs are deterministic artifacts.
    const fs::path out2 = dir.path / "lib2.pack";
    ASSERT_TRUE(epoc::store::write_pack(out2, entries));
    EXPECT_EQ(slurp(out), slurp(out2));
}

TEST(PackUnit, EveryPrefixTruncationIsRejectedAtOpenAndQuarantined) {
    // The satellite battery: every prefix of a valid pack — header, index,
    // each record boundary, every byte in between — must be rejected at
    // open time (the geometry equation or a checksum breaks), and the store
    // must quarantine the rejected file. Never UB: ASan/TSan CI runs this.
    TempDir dir;
    const fs::path master = dir.path / "master.pack";
    ASSERT_TRUE(epoc::store::write_pack(
        master, {{"k|a", encode_latency_result(sample_result(0.0))},
                 {"k|b", encode_latency_result(sample_result(1.0))}}));
    const std::string bytes = slurp(master);
    ASSERT_GT(bytes.size(), 44u);
    fs::remove(master); // only truncated copies from here on

    const fs::path pdir = dir.path / "packs";
    const fs::path sdir = dir.path / "store";
    fs::create_directories(pdir);
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        const fs::path p = pdir / "trunc.pack";
        { std::ofstream(p, std::ios::binary).write(bytes.data(),
                                                   static_cast<std::streamsize>(n)); }
        EXPECT_EQ(PackReader::open(p), nullptr) << "prefix of " << n << " bytes opened";

        // Through the store: the failed open is counted, quarantined, and
        // the probe is a clean miss.
        PulseStoreOptions sopt;
        sopt.dir = sdir.string();
        sopt.pack_dirs = {pdir.string()};
        PulseStore store(std::move(sopt));
        const auto st = store.stats();
        EXPECT_EQ(st.packs_open, 0u) << "prefix " << n;
        EXPECT_EQ(st.pack_suspect, 1u) << "prefix " << n;
        EXPECT_FALSE(store.load("k|a").has_value()) << "prefix " << n;
        EXPECT_EQ(quarantined_count(pdir), 1u) << "prefix " << n;
        fs::remove_all(pdir / "quarantine"); // reset for the next prefix
    }

    // Sanity: the untruncated bytes do open.
    const fs::path whole = pdir / "whole.pack";
    { std::ofstream(whole, std::ios::binary) << bytes; }
    EXPECT_NE(PackReader::open(whole), nullptr);
}

TEST(PackUnit, InPlaceDamageOpensButLookupTripsSuspect) {
    TempDir dir;
    const fs::path p = dir.path / "lib.pack";
    const std::string key = "damaged|key";
    ASSERT_TRUE(epoc::store::write_pack(
        p, {{key, encode_latency_result(sample_result())}}));
    doctor_pack(p);

    // Header and index are untouched, so the pack opens...
    std::shared_ptr<PackReader> pack = PackReader::open(p);
    ASSERT_NE(pack, nullptr);
    EXPECT_FALSE(pack->suspect());
    // ...but the first lookup trips the per-entry checksum.
    bool corrupt = false;
    EXPECT_FALSE(pack->find(key, &corrupt).has_value());
    EXPECT_TRUE(corrupt);
    EXPECT_TRUE(pack->suspect());
    // Suspect short-circuits everything afterward, including deep_verify.
    EXPECT_FALSE(pack->find(key).has_value());
    EXPECT_FALSE(pack->deep_verify());
}

TEST(PackUnit, EmbeddedKeyDisagreeingWithIndexIsCorruption) {
    // File surgery: rewrite the record's embedded key bytes (fixing the
    // record checksum so only the key <-> index-row relation is broken).
    // A lookup of the original key finds its index row, decodes a record
    // whose key hashes elsewhere — that is corruption, not a miss.
    TempDir dir;
    const fs::path p = dir.path / "lib.pack";
    const std::string key = "honest-key";
    const std::string payload = encode_latency_result(sample_result());
    ASSERT_TRUE(epoc::store::write_pack(p, {{key, payload}}));

    std::string bytes = slurp(p);
    const std::size_t rec_at = 28; // header: magic 8 + version 4 + count 8 + index 8
    const std::size_t key_at = rec_at + 8;
    ASSERT_EQ(bytes.compare(key_at, key.size(), key), 0);
    const std::string impostor = "hONEST-key"; // same length, different hash
    bytes.replace(key_at, impostor.size(), impostor);
    const std::size_t rec_size = 8 + key.size() + 8 + payload.size() + 8;
    const std::uint64_t ck =
        fnv1a64(bytes.data() + rec_at, rec_size - 8); // re-seal the record
    for (int i = 0; i < 8; ++i) // little-endian, matching the codec
        bytes[rec_at + rec_size - 8 + static_cast<std::size_t>(i)] =
            static_cast<char>((ck >> (8 * i)) & 0xff);
    { std::ofstream(p, std::ios::binary) << bytes; }

    std::shared_ptr<PackReader> pack = PackReader::open(p);
    ASSERT_NE(pack, nullptr) << "index checksum covers header+index only";
    bool corrupt = false;
    EXPECT_FALSE(pack->find(key, &corrupt).has_value());
    EXPECT_TRUE(corrupt) << "embedded key must hash to its index row";
    EXPECT_TRUE(pack->suspect());
}

TEST(PackUnit, PackDirsFromEnvSplitsColonsAndSkipsEmpties) {
#ifdef __unix__
    ::setenv("EPOC_PULSE_PACKS", "/a/b::/c:d", 1);
    const std::vector<std::string> dirs = PulseStore::pack_dirs_from_env();
    ::unsetenv("EPOC_PULSE_PACKS");
    ASSERT_EQ(dirs.size(), 3u);
    EXPECT_EQ(dirs[0], "/a/b");
    EXPECT_EQ(dirs[1], "/c");
    EXPECT_EQ(dirs[2], "d");
    EXPECT_TRUE(PulseStore::pack_dirs_from_env().empty());
#endif
}

// ------------------------------------------------------- PulseStore layering

TEST(PackStore, LoosEntriesShadowPacksAndPacksServeMisses) {
    TempDir dir;
    const fs::path pdir = dir.path / "packs";
    const fs::path sdir = dir.path / "store";
    fs::create_directories(pdir);
    const LatencyResult packed = sample_result(3.0);
    ASSERT_TRUE(epoc::store::write_pack(
        pdir / "lib.pack", {{"shared|key", encode_latency_result(packed)}}));

    PulseStoreOptions sopt;
    sopt.dir = sdir.string();
    sopt.pack_dirs = {pdir.string()};
    PulseStore store(std::move(sopt));
    EXPECT_EQ(store.stats().packs_open, 1u);
    EXPECT_EQ(store.stats().pack_entries, 1u);
    EXPECT_GT(store.stats().pack_bytes, 0u);

    // Loose miss falls through to the pack; the hit reports its provenance.
    bool from_pack = false;
    std::optional<LatencyResult> hit = store.load("shared|key", &from_pack);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(from_pack);
    expect_result_bits_equal(packed, *hit);
    EXPECT_EQ(store.stats().pack_hits, 1u);
    EXPECT_EQ(store.stats().hits, 1u);

    // A fresh local write shadows the pack entry.
    const LatencyResult fresh = sample_result(9.0);
    store.store("shared|key", fresh);
    hit = store.load("shared|key", &from_pack);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(from_pack) << "loose tier must win over packs";
    expect_result_bits_equal(fresh, *hit);
    EXPECT_EQ(store.stats().pack_hits, 1u) << "no second pack probe";

    // Remove the loose entry: the pack serves again.
    fs::remove(store.entry_path("shared|key"));
    hit = store.load("shared|key", &from_pack);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(from_pack);
    expect_result_bits_equal(packed, *hit);
}

TEST(PackStore, InvalidateDenylistsPackKeysWithoutTouchingTheFile) {
    TempDir dir;
    const fs::path pdir = dir.path / "packs";
    const fs::path sdir = dir.path / "store";
    fs::create_directories(pdir);
    const fs::path pfile = pdir / "lib.pack";
    ASSERT_TRUE(epoc::store::write_pack(
        pfile, {{"rejected|key", encode_latency_result(sample_result())},
                {"innocent|key", encode_latency_result(sample_result(1.0))}}));
    const std::string pristine = slurp(pfile);

    PulseStoreOptions sopt;
    sopt.dir = sdir.string();
    sopt.pack_dirs = {pdir.string()};
    PulseStore store(std::move(sopt));

    // Revalidation rejected the pack entry: the deny is in-memory only.
    store.invalidate("rejected|key");
    EXPECT_EQ(store.stats().invalidated, 1u);
    EXPECT_FALSE(store.load("rejected|key").has_value());
    EXPECT_EQ(store.stats().pack_denied, 1u);
    EXPECT_EQ(store.stats().pack_hits, 0u);
    // The neighbour is untouched, and so is the read-only file.
    EXPECT_TRUE(store.load("innocent|key").has_value());
    EXPECT_EQ(slurp(pfile), pristine) << "invalidate must never modify a pack";
    EXPECT_EQ(quarantined_count(pdir), 0u);

    // Invalidating a key no pack indexes must not grow the denylist count.
    store.invalidate("unknown|key");
    EXPECT_EQ(store.stats().invalidated, 1u);

    // A fresh authoritative write lifts the deny by shadowing it.
    const LatencyResult regenerated = sample_result(5.0);
    store.store("rejected|key", regenerated);
    bool from_pack = true;
    const std::optional<LatencyResult> back =
        store.load("rejected|key", &from_pack);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(from_pack);
    expect_result_bits_equal(regenerated, *back);
}

TEST(PackStore, CorruptPackIsQuarantinedAndNeighboursKeepServing) {
    TempDir dir;
    const fs::path pdir = dir.path / "packs";
    const fs::path sdir = dir.path / "store";
    fs::create_directories(pdir);
    // Two packs: the first is doctored, the second holds the same key clean.
    const LatencyResult good = sample_result(2.0);
    ASSERT_TRUE(epoc::store::write_pack(
        pdir / "a-bad.pack", {{"k", encode_latency_result(sample_result())}}));
    doctor_pack(pdir / "a-bad.pack");
    ASSERT_TRUE(epoc::store::write_pack(
        pdir / "b-good.pack", {{"k", encode_latency_result(good)}}));

    PulseStoreOptions sopt;
    sopt.dir = sdir.string();
    sopt.pack_dirs = {pdir.string()};
    PulseStore store(std::move(sopt));
    EXPECT_EQ(store.stats().packs_open, 2u) << "a doctored pack still opens";

    // The probe walks filename order: the bad pack trips its checksum, is
    // quarantined, and the clean neighbour answers the SAME lookup.
    bool from_pack = false;
    const std::optional<LatencyResult> hit = store.load("k", &from_pack);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(from_pack);
    expect_result_bits_equal(good, *hit);
    const auto st = store.stats();
    EXPECT_EQ(st.pack_corrupt, 1u);
    EXPECT_EQ(st.pack_suspect, 1u);
    EXPECT_EQ(st.packs_open, 1u);
    EXPECT_EQ(st.pack_hits, 1u);
    EXPECT_EQ(quarantined_count(pdir), 1u);
    EXPECT_TRUE(fs::exists(pdir / "b-good.pack"));
}

TEST(PackStore, CompactFoldsEvictedLooseEntriesIntoAServingPack) {
    TempDir dir;
    PulseStoreOptions sopt;
    sopt.dir = dir.str();
    sopt.max_bytes = 1; // any entry is over budget
    sopt.compact_to = 0.0;
    sopt.pack_on_compact = true;
    PulseStore store(std::move(sopt));

    std::vector<LatencyResult> originals;
    for (int i = 0; i < 4; ++i) {
        originals.push_back(sample_result(static_cast<double>(i)));
        store.store("fold|" + std::to_string(i), originals.back());
    }
    // store() compacts automatically when over budget, so by now the early
    // entries have already been folded; force one more pass to settle.
    store.compact();

    const auto st = store.stats();
    EXPECT_GT(st.packed, 0u) << "evicted entries must be folded, not dropped";
    EXPECT_GT(st.evicted, 0u);
    EXPECT_GE(st.packs_open, 1u);
    // Every key keeps serving — now from the pack tier.
    for (int i = 0; i < 4; ++i) {
        bool from_pack = false;
        const std::optional<LatencyResult> r =
            store.load("fold|" + std::to_string(i), &from_pack);
        ASSERT_TRUE(r.has_value()) << "key " << i << " lost by compaction";
        expect_result_bits_equal(originals[static_cast<std::size_t>(i)], *r);
    }
    EXPECT_GT(store.stats().pack_hits, 0u);
    EXPECT_LT(count_entries(dir.path), 4u);
}

TEST(PackStore, QuarantineSharesTheBudgetAndIsEvictedFirst) {
    TempDir dir;
    PulseStoreOptions sopt;
    sopt.dir = dir.str();
    sopt.max_bytes = 0; // no compaction while we stage the scenario
    auto staged = std::make_unique<PulseStore>(std::move(sopt));
    for (int i = 0; i < 3; ++i)
        staged->store("live|" + std::to_string(i), sample_result(i));
    // Corrupt two entries and load them: both land in quarantine/.
    fs::resize_file(staged->entry_path("live|0"), 10);
    fs::resize_file(staged->entry_path("live|1"), 10);
    EXPECT_FALSE(staged->load("live|0").has_value());
    EXPECT_FALSE(staged->load("live|1").has_value());
    EXPECT_EQ(quarantined_count(dir.path), 2u);
    const std::uint64_t live_bytes = fs::file_size(staged->entry_path("live|2"));
    staged.reset();

    // Reopen with a budget only the surviving live entry fits in: compaction
    // must delete the quarantined files before touching live entries.
    PulseStoreOptions tight;
    tight.dir = dir.str();
    tight.max_bytes = live_bytes + 8;
    tight.compact_to = 1.0;
    PulseStore store(std::move(tight));
    store.compact();
    const auto st = store.stats();
    EXPECT_EQ(st.quarantine_evicted, 2u);
    EXPECT_EQ(st.evicted, 0u) << "live entries must outlive quarantined junk";
    EXPECT_EQ(quarantined_count(dir.path), 0u);
    EXPECT_EQ(count_entries(dir.path), 1u);
    EXPECT_TRUE(store.load("live|2").has_value());
}

TEST(PackStore, StartupSweepsStalePackTempsAlongsideLooseTemps) {
    TempDir dir;
    const fs::path stale_loose = dir.path / "tmp-123-old";
    const fs::path stale_pack = dir.path / "orphan.pack.tmp";
    const fs::path fresh_pack = dir.path / "inflight.pack.tmp";
    { std::ofstream(stale_loose) << "crash leftover"; }
    { std::ofstream(stale_pack) << "crash leftover"; }
    { std::ofstream(fresh_pack) << "another process, mid-publish"; }
    const auto old = fs::file_time_type::clock::now() - std::chrono::hours(2);
    fs::last_write_time(stale_loose, old);
    fs::last_write_time(stale_pack, old);

    PulseStore store({dir.str()});
    EXPECT_FALSE(fs::exists(stale_loose)) << "stale loose temp must be swept";
    EXPECT_FALSE(fs::exists(stale_pack)) << "stale pack temp must be swept";
    EXPECT_TRUE(fs::exists(fresh_pack))
        << "a fresh temp may be another process mid-publish";
    EXPECT_EQ(store.stats().packs_open, 0u) << "temps are not packs";
}

// ----------------------------------------------------- PulseLibrary layering

TEST(PackLibrary, PackHitsRevalidateAsForeignAndSkipGrape) {
    TempDir dir;
    const fs::path seed_dir = dir.path / "seed";
    const fs::path pdir = dir.path / "packs";
    const fs::path sdir = dir.path / "store";
    fs::create_directories(pdir);
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();

    {
        PulseStore seed_store({seed_dir.string()});
        PulseLibrary seeder(true);
        seeder.set_store(&seed_store);
        seeder.get_or_generate(h, circuit::hadamard(), opt);
    }
    ASSERT_EQ(build_pack_from_store(seed_dir, pdir / "lib.pack"), 1u);

    PulseStoreOptions sopt;
    sopt.dir = sdir.string();
    sopt.pack_dirs = {pdir.string()};
    PulseStore store(std::move(sopt));
    PulseLibrary lib(true);
    lib.set_store(&store);
    util::Tracer tracer(true);
    lib.set_tracer(&tracer);
    std::atomic<int> foreign_seen{0};
    lib.set_revalidator([&](const std::string&, const BlockHamiltonian&,
                            const Matrix&, const LatencyResult&, bool foreign) {
        if (foreign) foreign_seen.fetch_add(1);
        return true;
    });

    const auto r = lib.get_or_generate(h, circuit::hadamard(), opt);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(foreign_seen.load(), 1) << "a pack hit must revalidate as foreign";
    EXPECT_EQ(lib.stats().store_hits, 1u);
    EXPECT_EQ(lib.stats().store_pack_hits, 1u);
    EXPECT_EQ(tracer.report().counter("qoc.grape_runs"), 0u)
        << "a pack hit must skip the latency search entirely";
    EXPECT_EQ(tracer.report().counter("qoc.store_pack_promotions"), 1u);
    EXPECT_EQ(count_entries(sdir), 0u)
        << "a pack hit promotes to memory, not back to the loose tier";

    // A local (non-foreign) hit through the same library keeps foreign=false.
    PulseLibrary second(true);
    second.set_store(&store);
    std::atomic<int> local_foreign{0};
    second.set_revalidator([&](const std::string&, const BlockHamiltonian&,
                               const Matrix&, const LatencyResult&, bool foreign) {
        local_foreign.fetch_add(foreign ? 1 : 0);
        return true;
    });
    second.get_or_generate(h, circuit::hadamard(), opt);
    EXPECT_EQ(local_foreign.load(), 1) << "still the pack: foreign again";
}

TEST(PackLibrary, RejectedForeignHitRegeneratesAndShadowsThePack) {
    TempDir dir;
    const fs::path seed_dir = dir.path / "seed";
    const fs::path pdir = dir.path / "packs";
    const fs::path sdir = dir.path / "store";
    fs::create_directories(pdir);
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    {
        PulseStore seed_store({seed_dir.string()});
        PulseLibrary seeder(true);
        seeder.set_store(&seed_store);
        seeder.get_or_generate(h, circuit::hadamard(), opt);
    }
    ASSERT_EQ(build_pack_from_store(seed_dir, pdir / "lib.pack"), 1u);
    const std::string pristine = slurp(pdir / "lib.pack");

    PulseStoreOptions sopt;
    sopt.dir = sdir.string();
    sopt.pack_dirs = {pdir.string()};
    PulseStore store(std::move(sopt));
    PulseLibrary lib(true);
    lib.set_store(&store);
    lib.set_revalidator([](const std::string&, const BlockHamiltonian&,
                           const Matrix&, const LatencyResult&, bool foreign) {
        return !foreign; // refuse everything a pack serves
    });
    const auto r = lib.get_or_generate(h, circuit::hadamard(), opt);
    ASSERT_NE(r, nullptr);
    EXPECT_GT(r->pulse.num_slots(), 0);
    EXPECT_EQ(lib.stats().store_rejected, 1u);
    EXPECT_EQ(lib.stats().store_hits, 0u);
    EXPECT_EQ(store.stats().invalidated, 1u) << "the reject must denylist";
    // The regenerated entry published locally and now shadows the pack; the
    // read-only file itself is bit-untouched.
    EXPECT_EQ(count_entries(sdir), 1u);
    EXPECT_EQ(slurp(pdir / "lib.pack"), pristine);
    EXPECT_EQ(quarantined_count(pdir), 0u);

    // A fresh library with the same refuse-foreign policy now resolves from
    // the loose tier — no foreign hit, no rejection, no GRAPE.
    PulseLibrary after(true);
    after.set_store(&store);
    after.set_revalidator([](const std::string&, const BlockHamiltonian&,
                             const Matrix&, const LatencyResult&, bool foreign) {
        return !foreign;
    });
    const auto local = after.get_or_generate(h, circuit::hadamard(), opt);
    ASSERT_NE(local, nullptr);
    EXPECT_EQ(after.stats().store_hits, 1u);
    EXPECT_EQ(after.stats().store_pack_hits, 0u);
    EXPECT_EQ(after.stats().store_rejected, 0u);
    expect_result_bits_equal(*r, *local);
}

TEST(PackLibrary, TwoLibrariesOneLocalTierOneReadOnlyPackUnderHammer) {
    TempDir dir;
    const fs::path seed_dir = dir.path / "seed";
    const fs::path pdir = dir.path / "packs";
    const fs::path sdir = dir.path / "store";
    fs::create_directories(pdir);
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    const int kClasses = 5;
    const int kThreads = 8;
    const int kLookupsPerThread = 4 * kClasses;

    // Seed ALL classes into a store, fold them into one read-only pack.
    {
        PulseStore seed_store({seed_dir.string()});
        PulseLibrary seeder(true);
        seeder.set_store(&seed_store);
        for (int cls = 0; cls < kClasses; ++cls)
            seeder.get_or_generate(h, class_member(cls, 0), opt);
    }
    const fs::path pfile = pdir / "warm.pack";
    ASSERT_EQ(build_pack_from_store(seed_dir, pfile),
              static_cast<std::size_t>(kClasses));
    const std::optional<std::uint64_t> checksum_before = fnv1a64_file(pfile.string());
    ASSERT_TRUE(checksum_before.has_value());

    // Two libraries share one local tier layered over the read-only pack.
    PulseStoreOptions sopt;
    sopt.dir = sdir.string();
    sopt.pack_dirs = {pdir.string()};
    PulseStore store(std::move(sopt));
    PulseLibrary lib_a(true), lib_b(true);
    lib_a.set_store(&store);
    lib_b.set_store(&store);

    std::atomic<int> start_gate{kThreads};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            start_gate.fetch_sub(1);
            while (start_gate.load() > 0) std::this_thread::yield();
            for (int i = 0; i < kLookupsPerThread; ++i) {
                const int cls = (i + t) % kClasses;
                PulseLibrary& lib = ((i + t) % 2 == 0) ? lib_a : lib_b;
                const auto r = lib.get_or_generate(h, class_member(cls, 0), opt);
                if (r == nullptr || r->pulse.num_slots() <= 0) failures.fetch_add(1);
            }
        });
    }
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(failures.load(), 0u);
    // Every class was warm in the pack: nothing was generated, nothing was
    // re-published to the loose tier, and the pack file is bit-untouched.
    EXPECT_EQ(lib_a.stats().store_misses + lib_b.stats().store_misses, 0u);
    EXPECT_GT(store.stats().pack_hits, 0u);
    EXPECT_EQ(count_entries(sdir), 0u);
    EXPECT_EQ(store.stats().pack_corrupt, 0u);
    EXPECT_EQ(quarantined_count(pdir), 0u);
    const std::optional<std::uint64_t> checksum_after = fnv1a64_file(pfile.string());
    ASSERT_TRUE(checksum_after.has_value());
    EXPECT_EQ(*checksum_after, *checksum_before)
        << "a read-only pack must never be modified by readers";
    // Whatever the interleaving, both libraries agree bit-for-bit.
    for (int cls = 0; cls < kClasses; ++cls) {
        const auto ra = lib_a.get_or_generate(h, class_member(cls, 0), opt);
        const auto rb = lib_b.get_or_generate(h, class_member(cls, 0), opt);
        expect_result_bits_equal(*ra, *rb);
    }
}

// -------------------------------------------------------------- compile level

core::EpocOptions cheap_compile_options(int num_threads, const std::string& store_dir) {
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.num_threads = num_threads;
    opt.trace_enabled = true;
    opt.pulse_store_dir = store_dir;
    return opt;
}

TEST(PackCompile, ColdStartWithOnlyAPackIsGrapeFreeAndBitIdentical) {
    TempDir dir;
    const circuit::Circuit c = bench::ghz(3);
    const fs::path warm_dir = dir.path / "warm";
    const fs::path pdir = dir.path / "packs";
    fs::create_directories(pdir);

    // Warm a store the usual way, then fold it into a shippable pack.
    core::EpocCompiler warm(cheap_compile_options(1, warm_dir.string()));
    const core::EpocResult rw = warm.compile(c);
    ASSERT_FALSE(rw.degraded);
    ASSERT_GT(rw.store_stats.writes, 0u);
    const std::string warm_json = core::schedule_to_json(rw.schedule);
    ASSERT_GT(build_pack_from_store(warm_dir, pdir / "ghz.pack"), 0u);

    // A fresh machine: empty store directory, only the pack behind it.
    const fs::path cold_dir = dir.path / "cold";
    core::EpocOptions opt = cheap_compile_options(2, cold_dir.string());
    opt.pulse_pack_dirs = {pdir.string()};
    core::EpocCompiler cold(opt);
    const core::EpocResult rc = cold.compile(c);
    ASSERT_FALSE(rc.degraded);
    EXPECT_EQ(rc.trace.counter("qoc.grape_runs"), 0u)
        << "a pack-backed cold start must do no GRAPE work";
    EXPECT_EQ(rc.library_stats.store_misses, 0u);
    EXPECT_GT(rc.library_stats.store_pack_hits, 0u);
    EXPECT_GT(rc.store_stats.pack_hits, 0u);
    EXPECT_EQ(rc.store_stats.pack_corrupt, 0u);
    EXPECT_GT(rc.verify.pack_revalidations, 0u)
        << "every pack hit must be re-simulated, whatever the verify level";
    EXPECT_EQ(core::schedule_to_json(rc.schedule), warm_json);
    EXPECT_TRUE(same_bits(rc.latency_ns, rw.latency_ns));
    EXPECT_TRUE(same_bits(rc.esp, rw.esp));

    // The same cold start armed through the environment instead of options.
#ifdef __unix__
    const fs::path env_dir = dir.path / "env";
    ::setenv("EPOC_PULSE_PACKS", pdir.string().c_str(), 1);
    core::EpocCompiler via_env(cheap_compile_options(1, env_dir.string()));
    ::unsetenv("EPOC_PULSE_PACKS");
    const core::EpocResult re = via_env.compile(c);
    ASSERT_FALSE(re.degraded);
    EXPECT_EQ(re.trace.counter("qoc.grape_runs"), 0u);
    EXPECT_GT(re.store_stats.pack_hits, 0u);
    EXPECT_EQ(core::schedule_to_json(re.schedule), warm_json);
#endif
}

TEST(PackCompile, DoctoredPackQuarantinesRecomputesAndStaysBitIdentical) {
    TempDir dir;
    const circuit::Circuit c = bench::ghz(3);

    // The reference: a pack-less cold compile.
    const fs::path ref_dir = dir.path / "ref";
    core::EpocCompiler ref(cheap_compile_options(1, ref_dir.string()));
    const core::EpocResult rr = ref.compile(c);
    ASSERT_FALSE(rr.degraded);
    const std::string ref_json = core::schedule_to_json(rr.schedule);

    // Fold the reference store into a pack, then doctor every entry.
    const fs::path pdir = dir.path / "packs";
    fs::create_directories(pdir);
    ASSERT_GT(build_pack_from_store(ref_dir, pdir / "ghz.pack"), 0u);
    doctor_pack(pdir / "ghz.pack");

    const fs::path cold_dir = dir.path / "cold";
    core::EpocOptions opt = cheap_compile_options(2, cold_dir.string());
    opt.pulse_pack_dirs = {pdir.string()};
    core::EpocCompiler cold(opt);
    const core::EpocResult rc = cold.compile(c);
    EXPECT_FALSE(rc.degraded)
        << "a damaged pack is a cold pack, never a degraded compile";
    EXPECT_GT(rc.trace.counter("qoc.grape_runs"), 0u) << "the miss recomputes";
    EXPECT_GT(rc.store_stats.pack_corrupt, 0u);
    EXPECT_GE(rc.store_stats.pack_suspect, 1u);
    EXPECT_EQ(rc.store_stats.pack_hits, 0u);
    EXPECT_EQ(quarantined_count(pdir), 1u) << "the doctored pack moves aside";
    EXPECT_EQ(core::schedule_to_json(rc.schedule), ref_json)
        << "recompute must be bit-identical to the pack-less cold compile";
    EXPECT_GT(rc.store_stats.writes, 0u) << "the recompute re-publishes locally";
}

TEST(PackCompile, PackFaultSitesNeverDegradeAndStayBitIdentical) {
    FaultGuard guard;
    TempDir dir;
    const circuit::Circuit c = bench::ghz(3);

    const fs::path ref_dir = dir.path / "ref";
    core::EpocCompiler ref(cheap_compile_options(1, ref_dir.string()));
    const core::EpocResult rr = ref.compile(c);
    ASSERT_FALSE(rr.degraded);
    const std::string ref_json = core::schedule_to_json(rr.schedule);

    const fs::path master = dir.path / "master.pack";
    ASSERT_GT(build_pack_from_store(ref_dir, master), 0u);

    int run = 0;
    for (const char* site : {"store.pack.open=*", "store.pack.index=*",
                             "store.pack.read=*", "store.pack.mmap=*"}) {
        // Fresh pack copy per site: quarantine consumes the file.
        const fs::path pdir = dir.path / ("packs-" + std::to_string(run));
        fs::create_directories(pdir);
        fs::copy_file(master, pdir / "ghz.pack");
        const fs::path cold_dir = dir.path / ("cold-" + std::to_string(run));
        ++run;
        util::fault::configure(site);
        core::EpocOptions opt = cheap_compile_options(2, cold_dir.string());
        opt.pulse_pack_dirs = {pdir.string()};
        core::EpocCompiler cold(opt);
        const core::EpocResult rc = cold.compile(c);
        util::fault::clear();
        EXPECT_FALSE(rc.degraded)
            << site << ": a broken pack tier is a cold tier, never a "
                       "degraded compile";
        EXPECT_EQ(core::schedule_to_json(rc.schedule), ref_json) << site;
        EXPECT_TRUE(same_bits(rc.latency_ns, rr.latency_ns)) << site;
        EXPECT_GT(rc.store_stats.pack_suspect + rc.store_stats.pack_corrupt, 0u)
            << site << ": the fault must actually have fired";
    }
}

} // namespace
