// Determinism under parallelism: the parallel pipeline must be a pure
// performance optimization. For every thread count the compiled artifact --
// synthesized circuit, pulse schedule, latency, ESP, and even the pulse
// library's hit/miss totals -- must be identical to the sequential
// (num_threads = 1) run, because per-block outputs merge in block order and
// cache misses are single-flight.
#include "epoc/pipeline.h"

#include "bench_circuits/generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace {

using namespace epoc::core;
using epoc::circuit::Circuit;

EpocOptions cheap_options(int num_threads) {
    EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.num_threads = num_threads;
    return opt;
}

std::vector<std::pair<std::string, Circuit>> seed_circuits() {
    return {
        {"ghz4", epoc::bench::ghz(4)},
        {"qft3", epoc::bench::qft(3)},
        {"decod24", epoc::bench::decod24()},
        {"bv5", epoc::bench::bv(5)},
        {"wstate", epoc::bench::wstate(4)},
    };
}

/// Everything observable about a compile, flattened for exact comparison.
struct Artifact {
    double latency_ns;
    double esp;
    double esp_decoherent;
    std::size_t num_pulses;
    std::size_t synthesized_gates;
    std::size_t library_hits;
    std::size_t library_misses;
    std::size_t synth_hits;
    std::size_t synth_misses;
    std::vector<std::tuple<std::vector<int>, double, double, double, std::string>> pulses;
};

Artifact artifact_of(const EpocResult& r) {
    Artifact a;
    a.latency_ns = r.latency_ns;
    a.esp = r.esp;
    a.esp_decoherent = r.esp_decoherent;
    a.num_pulses = r.num_pulses;
    a.synthesized_gates = r.synthesized_gates;
    a.library_hits = r.library_stats.hits;
    a.library_misses = r.library_stats.misses;
    a.synth_hits = r.synth_cache_stats.hits;
    a.synth_misses = r.synth_cache_stats.misses;
    for (const ScheduledPulse& p : r.schedule.pulses)
        a.pulses.emplace_back(p.job.qubits, p.start, p.end, p.job.fidelity, p.job.label);
    return a;
}

void expect_identical(const Artifact& seq, const Artifact& par, const std::string& what) {
    // Bit-exact: no tolerance. The parallel path runs the same floating-point
    // operations on the same inputs in the same per-block order.
    EXPECT_EQ(seq.latency_ns, par.latency_ns) << what;
    EXPECT_EQ(seq.esp, par.esp) << what;
    EXPECT_EQ(seq.esp_decoherent, par.esp_decoherent) << what;
    EXPECT_EQ(seq.num_pulses, par.num_pulses) << what;
    EXPECT_EQ(seq.synthesized_gates, par.synthesized_gates) << what;
    EXPECT_EQ(seq.library_hits, par.library_hits) << what;
    EXPECT_EQ(seq.library_misses, par.library_misses) << what;
    EXPECT_EQ(seq.synth_hits, par.synth_hits) << what;
    EXPECT_EQ(seq.synth_misses, par.synth_misses) << what;
    ASSERT_EQ(seq.pulses.size(), par.pulses.size()) << what;
    for (std::size_t i = 0; i < seq.pulses.size(); ++i)
        EXPECT_EQ(seq.pulses[i], par.pulses[i]) << what << " pulse " << i;
}

TEST(ParallelPipeline, BitIdenticalAcrossThreadCounts) {
    for (const auto& [name, circuit] : seed_circuits()) {
        EpocCompiler sequential(cheap_options(1));
        const Artifact seq = artifact_of(sequential.compile(circuit));
        for (const int threads : {2, 8}) {
            EpocCompiler parallel(cheap_options(threads));
            const EpocResult r = parallel.compile(circuit);
            EXPECT_EQ(r.threads_used, threads);
            expect_identical(seq, artifact_of(r),
                             name + " @" + std::to_string(threads) + " threads");
        }
    }
}

TEST(ParallelPipeline, BitIdenticalWithKakAndNoRegroup) {
    // Exercise the other synthesis paths (KAK fast path, regroup disabled)
    // under the same determinism contract.
    Circuit c(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).u3(0.4, -0.2, 0.9, 2).cx(2, 0).sx(1);
    for (const bool kak : {false, true}) {
        EpocOptions base = cheap_options(1);
        base.use_kak = kak;
        base.regroup_enabled = false;
        base.partition.max_qubits = 2;
        EpocCompiler sequential(base);
        const Artifact seq = artifact_of(sequential.compile(c));
        EpocOptions popt = base;
        popt.num_threads = 8;
        EpocCompiler parallel(popt);
        expect_identical(seq, artifact_of(parallel.compile(c)),
                         kak ? "kak" : "qsearch");
    }
}

TEST(ParallelPipeline, RepeatedCompilesStayDeterministic) {
    // The library persists across compiles; the second compile must be
    // all hits for every thread count, with identical cumulative stats.
    const Circuit c = epoc::bench::ghz(4);
    std::vector<Artifact> seconds;
    for (const int threads : {1, 2, 8}) {
        EpocCompiler compiler(cheap_options(threads));
        compiler.compile(c);
        seconds.push_back(artifact_of(compiler.compile(c)));
        EXPECT_EQ(seconds.back().library_misses, seconds.front().library_misses);
    }
    expect_identical(seconds[0], seconds[1], "2 threads, second compile");
    expect_identical(seconds[0], seconds[2], "8 threads, second compile");
}

TEST(ParallelPipeline, ZeroMeansHardwareConcurrency) {
    EpocOptions opt = cheap_options(0);
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(epoc::bench::ghz(3));
    EXPECT_EQ(r.threads_used, epoc::util::default_thread_count());
    EXPECT_GT(r.latency_ns, 0.0);
}

TEST(ParallelPipeline, SingleFlightWaitsOnlyUnderContention) {
    // Sequential runs can never block on another thread's generation.
    EpocCompiler compiler(cheap_options(1));
    compiler.compile(epoc::bench::qft(3));
    EXPECT_EQ(compiler.library().stats().single_flight_waits, 0u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    epoc::util::ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallel_for(counts.size(),
                      [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SurvivesBackToBackBatches) {
    // Regression guard for batch-identity confusion: stack-allocated batches
    // reuse addresses, so the pool must distinguish batches by generation.
    epoc::util::ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallel_for(20, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 50 * 20);
}

TEST(ThreadPool, ConcurrentCallersEachRunEveryIndexOnce) {
    // Regression for the shared-batch race: parallel_for used to publish its
    // batch through single shared members (batch_/generation_/workers_done_),
    // so two concurrent callers overwrote each other's state — lost indices,
    // double-run indices, or a caller returning before its own batch drained.
    // The pool now queues per-call batch records, so any number of threads may
    // call parallel_for on one pool simultaneously.
    epoc::util::ThreadPool pool(4);
    constexpr int kCallers = 8;
    constexpr int kRounds = 25;
    constexpr std::size_t kIndices = 200;
    std::vector<std::thread> callers;
    std::atomic<int> failures{0};
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&] {
            for (int round = 0; round < kRounds; ++round) {
                std::vector<std::atomic<int>> counts(kIndices);
                pool.parallel_for(kIndices,
                                  [&](std::size_t i) { counts[i].fetch_add(1); });
                for (const auto& c : counts)
                    if (c.load() != 1) failures.fetch_add(1);
            }
        });
    }
    for (std::thread& th : callers) th.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPool, NestedParallelForCompletes) {
    // A task that itself calls parallel_for on the same pool must not
    // deadlock (the nested caller drains its own batch inline) and must still
    // run every inner index exactly once.
    epoc::util::ThreadPool pool(3);
    constexpr std::size_t kOuter = 6;
    constexpr std::size_t kInner = 40;
    std::vector<std::atomic<int>> counts(kOuter * kInner);
    pool.parallel_for(kOuter, [&](std::size_t o) {
        pool.parallel_for(
            kInner, [&](std::size_t i) { counts[o * kInner + i].fetch_add(1); });
    });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ConcurrentCallerExceptionsStayWithTheirBatch) {
    // One caller's thrown task must surface on that caller and leave the
    // other caller's concurrently running batch untouched.
    epoc::util::ThreadPool pool(4);
    std::atomic<int> clean_ran{0};
    std::thread thrower([&] {
        for (int round = 0; round < 20; ++round) {
            EXPECT_THROW(pool.parallel_for(50,
                                           [](std::size_t i) {
                                               if (i == 13)
                                                   throw std::runtime_error("boom");
                                           }),
                         std::runtime_error);
        }
    });
    for (int round = 0; round < 20; ++round)
        pool.parallel_for(50, [&](std::size_t) { clean_ran.fetch_add(1); });
    thrower.join();
    EXPECT_EQ(clean_ran.load(), 20 * 50);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
    epoc::util::ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [](std::size_t i) {
                                       if (i == 37) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> n{0};
    pool.parallel_for(10, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 10);
}

} // namespace
