#include "partition/partition.h"

#include "bench_circuits/generators.h"
#include "bench_circuits/random_circuits.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace epoc::partition;
using epoc::circuit::Circuit;
using epoc::circuit::circuit_unitary;
using epoc::linalg::equal_up_to_global_phase;

TEST(GroupQubits, CoversAllQubitsDisjointly) {
    const Circuit c = epoc::bench::ghz(6);
    const auto groups = group_qubits(c, 3);
    std::set<int> seen;
    for (const auto& g : groups) {
        EXPECT_LE(g.size(), 3u);
        for (const int q : g) EXPECT_TRUE(seen.insert(q).second);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(GroupQubits, ConnectedQubitsGroupTogether) {
    Circuit c(4);
    c.cx(0, 2).cx(0, 2).cx(1, 3);
    const auto groups = group_qubits(c, 2);
    for (const auto& g : groups) {
        if (g.front() == 0) {
            EXPECT_EQ(g, (std::vector<int>{0, 2}));
        }
        if (g.front() == 1) {
            EXPECT_EQ(g, (std::vector<int>{1, 3}));
        }
    }
}

TEST(GroupQubits, RejectsNonPositiveLimit) {
    const Circuit c = epoc::bench::ghz(3);
    EXPECT_THROW(group_qubits(c, 0), std::invalid_argument);
}

TEST(Partition, BlocksRespectQubitLimit) {
    const Circuit c = epoc::bench::qft(5);
    PartitionOptions opt;
    opt.max_qubits = 2;
    for (const CircuitBlock& b : greedy_partition(c, opt))
        EXPECT_LE(b.qubits.size(), 2u);
}

TEST(Partition, BlocksRespectGateLimitExceptBridges) {
    const Circuit c = epoc::bench::vqe(4, 3);
    PartitionOptions opt;
    opt.max_qubits = 2;
    opt.max_gates = 3;
    for (const CircuitBlock& b : greedy_partition(c, opt)) {
        if (!b.bridge) {
            EXPECT_LE(b.body.size(), 3u);
        }
    }
}

TEST(Partition, AllGatesAccountedFor) {
    const Circuit c = epoc::bench::dnn(5, 2);
    std::size_t total = 0;
    for (const CircuitBlock& b : greedy_partition(c, {})) total += b.body.size();
    EXPECT_EQ(total, c.size());
}

TEST(Partition, ReassemblyPreservesUnitary) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        epoc::bench::RandomCircuitSpec spec;
        spec.seed = seed;
        spec.num_qubits = 3 + static_cast<int>(seed % 3);
        spec.num_gates = 30;
        const Circuit c = epoc::bench::random_circuit(spec);
        for (const int maxq : {2, 3}) {
            PartitionOptions opt;
            opt.max_qubits = maxq;
            const auto blocks = greedy_partition(c, opt);
            const Circuit re = blocks_to_circuit(blocks, c.num_qubits());
            EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(re), circuit_unitary(c),
                                                 1e-7))
                << "seed " << seed << " maxq " << maxq;
        }
    }
}

TEST(Partition, BridgingGateBecomesOwnBlock) {
    Circuit c(4);
    c.cx(0, 1).cx(0, 1).cx(2, 3).cx(1, 2); // last gate spans the two groups
    PartitionOptions opt;
    opt.max_qubits = 2;
    const auto blocks = greedy_partition(c, opt);
    bool found_bridge = false;
    for (const CircuitBlock& b : blocks)
        if (b.bridge) {
            found_bridge = true;
            EXPECT_EQ(b.body.size(), 1u);
        }
    EXPECT_TRUE(found_bridge);
}

TEST(Partition, BlockUnitaryMatchesLocalCircuit) {
    const Circuit c = epoc::bench::ghz(4);
    const auto blocks = greedy_partition(c, {});
    for (const CircuitBlock& b : blocks) {
        const auto u = block_unitary(b);
        EXPECT_EQ(u.rows(), std::size_t{1} << b.qubits.size());
        EXPECT_TRUE(u.is_unitary(1e-9));
    }
}

TEST(Partition, SingleQubitCircuit) {
    Circuit c(1);
    c.h(0).t(0).h(0);
    const auto blocks = greedy_partition(c, {});
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].body.size(), 3u);
}

TEST(Partition, EmptyCircuitYieldsNoBlocks) {
    const Circuit c(3);
    EXPECT_TRUE(greedy_partition(c, {}).empty());
}

} // namespace
