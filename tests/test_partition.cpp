#include "partition/partition.h"

#include "bench_circuits/generators.h"
#include "bench_circuits/random_circuits.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace epoc::partition;
using epoc::circuit::Circuit;
using epoc::circuit::circuit_unitary;
using epoc::linalg::equal_up_to_global_phase;

TEST(GroupQubits, CoversAllQubitsDisjointly) {
    const Circuit c = epoc::bench::ghz(6);
    const auto groups = group_qubits(c, 3);
    std::set<int> seen;
    for (const auto& g : groups) {
        EXPECT_LE(g.size(), 3u);
        for (const int q : g) EXPECT_TRUE(seen.insert(q).second);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(GroupQubits, ConnectedQubitsGroupTogether) {
    Circuit c(4);
    c.cx(0, 2).cx(0, 2).cx(1, 3);
    const auto groups = group_qubits(c, 2);
    for (const auto& g : groups) {
        if (g.front() == 0) {
            EXPECT_EQ(g, (std::vector<int>{0, 2}));
        }
        if (g.front() == 1) {
            EXPECT_EQ(g, (std::vector<int>{1, 3}));
        }
    }
}

TEST(GroupQubits, RejectsNonPositiveLimit) {
    const Circuit c = epoc::bench::ghz(3);
    EXPECT_THROW(group_qubits(c, 0), std::invalid_argument);
}

TEST(Partition, BlocksRespectQubitLimit) {
    const Circuit c = epoc::bench::qft(5);
    PartitionOptions opt;
    opt.max_qubits = 2;
    for (const CircuitBlock& b : greedy_partition(c, opt))
        EXPECT_LE(b.qubits.size(), 2u);
}

TEST(Partition, BlocksRespectGateLimitExceptBridges) {
    const Circuit c = epoc::bench::vqe(4, 3);
    PartitionOptions opt;
    opt.max_qubits = 2;
    opt.max_gates = 3;
    for (const CircuitBlock& b : greedy_partition(c, opt)) {
        if (!b.bridge) {
            EXPECT_LE(b.body.size(), 3u);
        }
    }
}

TEST(Partition, AllGatesAccountedFor) {
    const Circuit c = epoc::bench::dnn(5, 2);
    std::size_t total = 0;
    for (const CircuitBlock& b : greedy_partition(c, {})) total += b.body.size();
    EXPECT_EQ(total, c.size());
}

TEST(Partition, ReassemblyPreservesUnitary) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        epoc::bench::RandomCircuitSpec spec;
        spec.seed = seed;
        spec.num_qubits = 3 + static_cast<int>(seed % 3);
        spec.num_gates = 30;
        const Circuit c = epoc::bench::random_circuit(spec);
        for (const int maxq : {2, 3}) {
            PartitionOptions opt;
            opt.max_qubits = maxq;
            const auto blocks = greedy_partition(c, opt);
            const Circuit re = blocks_to_circuit(blocks, c.num_qubits());
            EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(re), circuit_unitary(c),
                                                 1e-7))
                << "seed " << seed << " maxq " << maxq;
        }
    }
}

TEST(Partition, BridgingGateBecomesOwnBlock) {
    Circuit c(4);
    c.cx(0, 1).cx(0, 1).cx(2, 3).cx(1, 2); // last gate spans the two groups
    PartitionOptions opt;
    opt.max_qubits = 2;
    const auto blocks = greedy_partition(c, opt);
    bool found_bridge = false;
    for (const CircuitBlock& b : blocks)
        if (b.bridge) {
            found_bridge = true;
            EXPECT_EQ(b.body.size(), 1u);
        }
    EXPECT_TRUE(found_bridge);
}

TEST(Partition, BlockUnitaryMatchesLocalCircuit) {
    const Circuit c = epoc::bench::ghz(4);
    const auto blocks = greedy_partition(c, {});
    for (const CircuitBlock& b : blocks) {
        const auto u = block_unitary(b);
        EXPECT_EQ(u.rows(), std::size_t{1} << b.qubits.size());
        EXPECT_TRUE(u.is_unitary(1e-9));
    }
}

TEST(Partition, SingleQubitCircuit) {
    Circuit c(1);
    c.h(0).t(0).h(0);
    const auto blocks = greedy_partition(c, {});
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].body.size(), 3u);
}

TEST(Partition, EmptyCircuitYieldsNoBlocks) {
    const Circuit c(3);
    EXPECT_TRUE(greedy_partition(c, {}).empty());
}

// --- Topology-aware mode -------------------------------------------------

using epoc::circuit::CouplingMap;

/// Every block a topology-aware partition emits must be physically
/// realizable: its qubit set induces a connected subgraph of the device.
/// Bridge blocks additionally need coupling-adjacent operands — they ship to
/// hardware verbatim, while non-bridge bodies are re-synthesized downstream
/// with CNOTs restricted to coupling edges.
void expect_blocks_feasible(const std::vector<CircuitBlock>& blocks,
                            const CouplingMap& map) {
    for (const CircuitBlock& b : blocks) {
        EXPECT_TRUE(map.connected_subset(b.qubits))
            << "disconnected block of " << b.qubits.size() << " qubits";
        if (!b.bridge) continue;
        for (const auto& g : b.body.gates())
            if (g.arity() == 2)
                EXPECT_TRUE(map.adjacent(b.qubits[static_cast<std::size_t>(
                                             g.qubits[0])],
                                         b.qubits[static_cast<std::size_t>(
                                             g.qubits[1])]));
    }
}

TEST(PartitionTopology, GroupsAreConnectedSubgraphs) {
    const CouplingMap map = CouplingMap::heavy_hex7();
    epoc::bench::RandomCircuitSpec spec;
    spec.num_qubits = 7;
    spec.num_gates = 40;
    const Circuit c = epoc::bench::random_circuit(spec);
    for (const int maxq : {2, 3, 4})
        for (const auto& g : group_qubits(c, maxq, &map)) {
            EXPECT_LE(g.size(), static_cast<std::size_t>(maxq));
            EXPECT_TRUE(map.connected_subset(g));
        }
}

TEST(PartitionTopology, BlocksFeasibleAndRoundTripOnEveryDevice) {
    const std::vector<CouplingMap> devices = {
        CouplingMap::linear(5), CouplingMap::ring(8), CouplingMap::grid(3, 3),
        CouplingMap::heavy_hex7()};
    for (const CouplingMap& map : devices) {
        epoc::bench::RandomCircuitSpec spec;
        spec.seed = 7;
        spec.num_qubits = map.num_qubits();
        spec.num_gates = 25;
        const Circuit c = epoc::bench::random_circuit(spec);
        PartitionOptions opt;
        opt.max_qubits = 3;
        opt.coupling = &map;
        const auto blocks = greedy_partition(c, opt);
        expect_blocks_feasible(blocks, map);
        // The SWAP-walk bridges must cancel: replaying the block list is the
        // original program (up to global phase).
        const Circuit re = blocks_to_circuit(blocks, c.num_qubits());
        EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(re),
                                             circuit_unitary(c), 1e-7))
            << "device with " << map.num_qubits() << " qubits";
    }
}

TEST(PartitionTopology, SwapWalkBridgesDistantGate) {
    // CX(0,3) on a 4-qubit chain: operands at distance 3 force a SWAP walk.
    Circuit c(4);
    c.h(0).cx(0, 3);
    const CouplingMap map = CouplingMap::linear(4);
    PartitionOptions opt;
    opt.max_qubits = 2;
    opt.coupling = &map;
    const auto blocks = greedy_partition(c, opt);
    bool swap_bridge = false;
    for (const CircuitBlock& b : blocks)
        if (b.bridge && b.body.size() == 1 &&
            b.body.gate(0).kind == epoc::circuit::GateKind::SWAP)
            swap_bridge = true;
    EXPECT_TRUE(swap_bridge);
    expect_blocks_feasible(blocks, map);
    const Circuit re = blocks_to_circuit(blocks, c.num_qubits());
    EXPECT_TRUE(
        equal_up_to_global_phase(circuit_unitary(re), circuit_unitary(c), 1e-7));
}

TEST(PartitionTopology, RejectPolicyThrowsOnInfeasibleBridge) {
    Circuit c(4);
    c.cx(0, 3);
    const CouplingMap map = CouplingMap::linear(4);
    PartitionOptions opt;
    opt.max_qubits = 2;
    opt.coupling = &map;
    opt.bridge_policy = BridgePolicy::reject;
    try {
        greedy_partition(c, opt);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("bridge policy: reject"),
                  std::string::npos);
    }
}

TEST(PartitionTopology, AdjacentBridgeNeedsNoSwaps) {
    // Groups {0,1} and {2,3} on a chain: the cross-group CX(1,2) operands are
    // adjacent, so the bridge is the plain one-gate block, no SWAPs.
    Circuit c(4);
    c.cx(0, 1).cx(2, 3).cx(1, 2);
    const CouplingMap map = CouplingMap::linear(4);
    PartitionOptions opt;
    opt.max_qubits = 2;
    opt.coupling = &map;
    for (const CircuitBlock& b : greedy_partition(c, opt))
        for (const auto& g : b.body.gates())
            EXPECT_NE(g.kind, epoc::circuit::GateKind::SWAP);
}

} // namespace
