#include "circuit/peephole.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include "bench_circuits/random_circuits.h"

#include <gtest/gtest.h>

#include <numbers>

namespace {

using namespace epoc::circuit;
using epoc::linalg::equal_up_to_global_phase;
using epoc::linalg::Matrix;

TEST(Peephole, CancelsAdjacentHadamards) {
    Circuit c(1);
    c.h(0).h(0);
    EXPECT_EQ(peephole_optimize(c).size(), 0u);
}

TEST(Peephole, CancelsAdjacentCnots) {
    Circuit c(2);
    c.cx(0, 1).cx(0, 1);
    EXPECT_EQ(peephole_optimize(c).size(), 0u);
}

TEST(Peephole, DoesNotCancelFlippedCnots) {
    Circuit c(2);
    c.cx(0, 1).cx(1, 0);
    EXPECT_EQ(peephole_optimize(c).size(), 2u);
}

TEST(Peephole, MergesRotations) {
    Circuit c(1);
    c.t(0).t(0);
    const Circuit out = peephole_optimize(c);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gate(0).params[0], std::numbers::pi / 2, 1e-12);
}

TEST(Peephole, MergesInverseRotationsToNothing) {
    Circuit c(1);
    c.rz(0.7, 0).rz(-0.7, 0);
    EXPECT_EQ(peephole_optimize(c).size(), 0u);
}

TEST(Peephole, DropsZeroRotations) {
    Circuit c(2);
    c.rz(0.0, 0).rx(0.0, 1).ry(0.0, 0);
    EXPECT_EQ(peephole_optimize(c).size(), 0u);
}

TEST(Peephole, CommutesRzThroughCnotControl) {
    Circuit c(2);
    c.rz(0.4, 0).cx(0, 1).rz(-0.4, 0);
    const Circuit out = peephole_optimize(c);
    EXPECT_EQ(out.size(), 1u); // only the cx remains
    EXPECT_EQ(out.gate(0).kind, GateKind::CX);
}

TEST(Peephole, CommutesXThroughCnotTarget) {
    Circuit c(2);
    c.x(1).cx(0, 1).x(1);
    const Circuit out = peephole_optimize(c);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Peephole, HDoesNotCommuteThroughCz) {
    // h on a cz operand must block cancellation (paper Section 3.1 example).
    Circuit c(2);
    c.z(0).cz(0, 1).h(0).z(0);
    const Circuit out = peephole_optimize(c);
    // z+cz commute so first z could move, but h blocks the second z.
    EXPECT_EQ(out.size(), 4u);
}

TEST(Peephole, MergesCpAcrossCommutingLayer) {
    Circuit c(3);
    c.cp(0.3, 0, 1).cz(1, 2).cp(0.4, 0, 1);
    const Circuit out = peephole_optimize(c);
    ASSERT_EQ(out.size(), 2u);
    double merged = 0.0;
    for (const Gate& g : out.gates())
        if (g.kind == GateKind::CP) merged = g.params[0];
    EXPECT_NEAR(merged, 0.7, 1e-12);
}

TEST(Peephole, SwapPairCancelsUnordered) {
    Circuit c(2);
    c.swap(0, 1).swap(1, 0);
    EXPECT_EQ(peephole_optimize(c).size(), 0u);
}

class PeepholeRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeepholeRandom, PreservesUnitary) {
    epoc::bench::RandomCircuitSpec spec;
    spec.seed = GetParam();
    spec.num_qubits = 2 + static_cast<int>(GetParam() % 4);
    spec.num_gates = 25 + static_cast<int>(GetParam() % 30);
    spec.non_clifford_fraction = 0.3;
    const Circuit c = epoc::bench::random_circuit(spec);
    const Circuit out = peephole_optimize(c);
    EXPECT_LE(out.size(), c.size());
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(out), circuit_unitary(c), 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeRandom,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{25}));

} // namespace
