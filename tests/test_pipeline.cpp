// Integration tests over the full EPOC pipeline and its baselines. QOC
// settings are turned down (loose fidelity threshold, small circuits) so the
// suite stays fast; the benches run the full-strength configuration.
#include "epoc/baselines.h"
#include "epoc/pipeline.h"
#include "epoc/regroup.h"

#include "bench_circuits/generators.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using namespace epoc::core;
using epoc::circuit::Circuit;

EpocOptions cheap_options() {
    EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    return opt;
}

TEST(Regroup, MergesConsecutiveBlocksOnSameQubits) {
    Circuit c(2);
    for (int i = 0; i < 6; ++i) c.cx(0, 1).h(0);
    RegroupOptions opt;
    opt.max_qubits = 2;
    opt.max_gates = 32;
    const auto blocks = regroup(c, opt);
    EXPECT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].body.size(), c.size());
}

TEST(Regroup, RespectsGateLimit) {
    Circuit c(2);
    for (int i = 0; i < 40; ++i) c.cx(0, 1);
    RegroupOptions opt;
    opt.max_qubits = 2;
    opt.max_gates = 8;
    for (const auto& b : regroup(c, opt)) EXPECT_LE(b.body.size(), 8u);
}

TEST(Pipeline, GhzEndToEnd) {
    EpocCompiler compiler(cheap_options());
    const EpocResult r = compiler.compile(epoc::bench::ghz(3));
    EXPECT_GT(r.latency_ns, 0.0);
    EXPECT_GT(r.esp, 0.9);
    EXPECT_GT(r.num_pulses, 0u);
    EXPECT_GT(r.compile_ms, 0.0);
}

TEST(Pipeline, SynthesizedCircuitMatchesInputUnitary) {
    EpocOptions opt = cheap_options();
    opt.qsearch.threshold = 1e-5;
    EpocCompiler compiler(opt);
    const Circuit c = epoc::bench::ghz(3);
    const EpocResult r = compiler.compile(c);
    EXPECT_TRUE(epoc::linalg::equal_up_to_global_phase(
        epoc::circuit::circuit_unitary(r.synthesized),
        epoc::circuit::circuit_unitary(c), 1e-3));
}

TEST(Pipeline, GroupingReducesLatencyAndPulseCount) {
    const Circuit c = epoc::bench::decod24();
    EpocCompiler grouped(cheap_options());
    EpocOptions off = cheap_options();
    off.regroup_enabled = false;
    EpocCompiler ungrouped(off);
    const EpocResult rg = grouped.compile(c);
    const EpocResult rn = ungrouped.compile(c);
    EXPECT_LT(rg.latency_ns, rn.latency_ns);
    EXPECT_LT(rg.num_pulses, rn.num_pulses);
    EXPECT_GT(rg.esp, rn.esp); // Fig. 10 mechanism
}

TEST(Pipeline, ZxStageCanBeDisabled) {
    EpocOptions opt = cheap_options();
    opt.use_zx = false;
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(epoc::bench::ghz(3));
    EXPECT_EQ(r.depth_after_zx, r.depth_original);
}

TEST(Pipeline, LibraryPersistsAcrossCompiles) {
    EpocCompiler compiler(cheap_options());
    compiler.compile(epoc::bench::ghz(3));
    const std::size_t misses_first = compiler.library().stats().misses;
    compiler.compile(epoc::bench::ghz(3));
    // Second compile of the same circuit is all cache hits.
    EXPECT_EQ(compiler.library().stats().misses, misses_first);
    EXPECT_GT(compiler.library().stats().hits, 0u);
}

TEST(Pipeline, IdentityBlocksAreSkipped) {
    Circuit c(2);
    c.h(0).h(0).cx(0, 1).cx(0, 1); // everything cancels
    EpocCompiler compiler(cheap_options());
    const EpocResult r = compiler.compile(c);
    EXPECT_EQ(r.num_pulses, 0u);
    EXPECT_EQ(r.latency_ns, 0.0);
}

TEST(Pipeline, KakFastPathPreservesUnitary) {
    EpocOptions opt = cheap_options();
    opt.use_kak = true;
    opt.partition.max_qubits = 2; // force 2-qubit blocks through the KAK path
    EpocCompiler compiler(opt);
    Circuit c(2);
    c.h(0).cx(0, 1).t(1).cx(1, 0).sx(0);
    const EpocResult r = compiler.compile(c);
    EXPECT_TRUE(epoc::linalg::equal_up_to_global_phase(
        epoc::circuit::circuit_unitary(r.synthesized),
        epoc::circuit::circuit_unitary(c), 1e-5));
    EXPECT_GT(r.latency_ns, 0.0);
}

TEST(Pipeline, KakFastPathIsFasterThanQSearch) {
    Circuit c(4);
    // Dense random-ish 2-qubit content: the worst case for QSearch.
    c.u3(0.3, 1.1, -0.4, 0).u3(0.8, -0.2, 0.5, 1).cx(0, 1).u3(1.3, 0.1, 0.2, 0)
        .cx(1, 0).u3(0.7, 0.9, -1.0, 1).cx(0, 1);
    c.u3(0.4, -1.1, 0.6, 2).cx(2, 3).u3(0.2, 0.3, 0.9, 3).cx(3, 2);
    EpocOptions base = cheap_options();
    base.partition.max_qubits = 2;
    EpocOptions kak = base;
    kak.use_kak = true;
    EpocCompiler slow(base), fast(kak);
    const EpocResult rs = slow.compile(c);
    const EpocResult rf = fast.compile(c);
    EXPECT_LT(rf.synthesis_ms, rs.synthesis_ms + 1.0);
}

TEST(Baselines, GateBasedUsesVirtualRz) {
    Circuit c(1);
    c.rz(0.7, 0);
    GateBasedCompiler gate;
    const EpocResult r = gate.compile(c);
    EXPECT_EQ(r.latency_ns, 0.0); // rz alone is free
    EXPECT_EQ(r.esp, 1.0);
}

TEST(Baselines, GateBasedLatencyScalesWithGates) {
    GateBasedCompiler gate;
    const EpocResult r1 = gate.compile(epoc::bench::ghz(2));
    const EpocResult r2 = gate.compile(epoc::bench::ghz(4));
    EXPECT_GT(r2.latency_ns, r1.latency_ns);
}

TEST(Baselines, PaqocBeatsGateBased) {
    const Circuit c = epoc::bench::decod24();
    GateBasedCompiler gate;
    PaqocLikeCompiler paqoc;
    EXPECT_LT(paqoc.compile(c).latency_ns, gate.compile(c).latency_ns);
}

TEST(Baselines, EpocBeatsPaqocOnStructuredCircuit) {
    // The headline Table-1 ordering: EPOC < PAQOC-like < gate-based. Uses the
    // full-strength configuration (as the Table-1 bench does): the win margin
    // depends on the fidelity threshold.
    const Circuit c = epoc::bench::simon(2);
    GateBasedCompiler gate;
    PaqocLikeCompiler paqoc;
    EpocOptions eo;
    eo.regroup_opt.max_qubits = 4;
    EpocCompiler epoc_c(eo);
    const double lg = gate.compile(c).latency_ns;
    const double lp = paqoc.compile(c).latency_ns;
    const double le = epoc_c.compile(c).latency_ns;
    EXPECT_LT(lp, lg);
    EXPECT_LT(le, lp);
}

TEST(Baselines, AccqocMstWarmStartCompiles) {
    AccqocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    AccqocLikeCompiler acc(opt);
    const EpocResult r = acc.compile(epoc::bench::qft(3));
    EXPECT_GT(r.latency_ns, 0.0);
    EXPECT_GT(r.num_pulses, 0u);
}

TEST(Baselines, AccqocWithoutMstMatchesPulseCount) {
    AccqocOptions with_mst;
    with_mst.latency.fidelity_threshold = 0.99;
    AccqocOptions without = with_mst;
    without.use_mst = false;
    AccqocLikeCompiler a(with_mst), b(without);
    const Circuit c = epoc::bench::ghz(4);
    EXPECT_EQ(a.compile(c).num_pulses, b.compile(c).num_pulses);
}

TEST(Pipeline, VariationalAngleSweepReusesThePlan) {
    // The variational outer loop: one circuit structure, 50 angle updates.
    // After the first (plan-building) compile every iteration must be a plan
    // hit, and warm-starting GRAPE from the previous iterate's pulses must cut
    // the total optimizer iterations without costing fidelity.
    constexpr int kIters = 50;
    const auto qaoa = [](double gamma, double beta) {
        Circuit c(2);
        c.h(0).h(1);
        c.rzz(gamma, 0, 1);
        c.rx(beta, 0).rx(beta, 1);
        return c;
    };
    const auto sweep = [&](bool warm, std::vector<double>& esp_out) {
        EpocOptions opt = cheap_options();
        opt.plan_cache = true;
        opt.plan_warm_start = warm;
        opt.trace_enabled = true;
        EpocCompiler compiler(opt);
        std::uint64_t total_grape_iters = 0;
        for (int i = 0; i < kIters; ++i) {
            const double gamma = 0.8 + 0.002 * i;
            const double beta = 0.4 - 0.001 * i;
            const EpocResult r = compiler.compile(qaoa(gamma, beta));
            EXPECT_EQ(r.plan_hit, i > 0) << "warm=" << warm << " iter=" << i;
            EXPECT_FALSE(r.degraded);
            EXPECT_GT(r.esp, 0.9) << "warm=" << warm << " iter=" << i;
            esp_out.push_back(r.esp);
            // Counters accumulate across compiles; the last report totals the
            // whole sweep.
            total_grape_iters = r.trace.counter("qoc.grape_iterations");
        }
        return total_grape_iters;
    };

    std::vector<double> warm_esp, cold_esp;
    const std::uint64_t warm_iters = sweep(true, warm_esp);
    const std::uint64_t cold_iters = sweep(false, cold_esp);

    // Warm seeds must save real optimizer work across the sweep...
    EXPECT_LT(warm_iters, cold_iters);
    // ...without costing fidelity. Both runs stop once every pulse clears the
    // fidelity threshold; a cold run typically *overshoots* the threshold a
    // little more than a warm one (more gradient steps past convergence), so
    // exact esp equality is not the contract. The contract is: the warm
    // iterate never lands materially below its cold counterpart — the GRAPE
    // cold-rescue re-runs any warm seed that converges under the target, so a
    // bad seed can cost iterations but never a below-threshold pulse.
    ASSERT_EQ(warm_esp.size(), cold_esp.size());
    for (std::size_t i = 0; i < warm_esp.size(); ++i)
        EXPECT_GE(warm_esp[i], cold_esp[i] - 5e-3) << "iter=" << i;
}

} // namespace
