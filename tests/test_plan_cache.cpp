// Property tests for the compilation plan cache (epoc/plan_cache.h) and its
// keying substrate (circuit/structure.h): structure keys must be invariant
// under angle changes and sensitive to every structural edit, and a plan-hit
// compile must be bit-identical to a cold compile of the same angles.
#include "circuit/structure.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"

#include "bench_circuits/generators.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace {

using namespace epoc::core;
using epoc::circuit::Circuit;
using epoc::circuit::StrippedCircuit;
using epoc::circuit::strip_parameters;

EpocOptions cheap_options() {
    EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    return opt;
}

/// A one-layer QAOA-style template over 2 qubits: the canonical "same
/// structure, different angles" workload.
Circuit qaoa2(double gamma, double beta) {
    Circuit c(2);
    c.h(0).h(1);
    c.rzz(gamma, 0, 1);
    c.rx(beta, 0).rx(beta, 1);
    return c;
}

std::uint64_t digest(const PulseSchedule& s) {
    return epoc::qoc::fnv1a64(schedule_to_json(s));
}

TEST(StructureKey, AngleChangesKeepTheKeyAndMoveTheParams) {
    const StrippedCircuit a = strip_parameters(qaoa2(0.3, 0.7));
    const StrippedCircuit b = strip_parameters(qaoa2(1.1, -0.2));
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.parametric_gates, 3u);
    ASSERT_EQ(a.params.size(), 3u);
    EXPECT_DOUBLE_EQ(a.params[0], 0.3);
    EXPECT_DOUBLE_EQ(a.params[1], 0.7);
    EXPECT_DOUBLE_EQ(a.params[2], 0.7);
    EXPECT_DOUBLE_EQ(b.params[0], 1.1);
    EXPECT_DOUBLE_EQ(b.params[1], -0.2);
}

TEST(StructureKey, EveryStructuralEditChangesTheKey) {
    const std::string base = strip_parameters(qaoa2(0.3, 0.7)).key;

    // Different gate kind at one position.
    Circuit kind(2);
    kind.h(0).h(1).rzz(0.3, 0, 1).ry(0.7, 0).rx(0.7, 1);
    EXPECT_NE(strip_parameters(kind).key, base);

    // Different qubit wiring.
    Circuit wiring(2);
    wiring.h(0).h(1).rzz(0.3, 1, 0).rx(0.7, 0).rx(0.7, 1);
    EXPECT_NE(strip_parameters(wiring).key, base);

    // Different gate order.
    Circuit order(2);
    order.h(1).h(0).rzz(0.3, 0, 1).rx(0.7, 0).rx(0.7, 1);
    EXPECT_NE(strip_parameters(order).key, base);

    // Wider register, identical gate list.
    Circuit wider(3);
    wider.h(0).h(1).rzz(0.3, 0, 1).rx(0.7, 0).rx(0.7, 1);
    EXPECT_NE(strip_parameters(wider).key, base);

    // One gate more.
    Circuit longer = qaoa2(0.3, 0.7);
    longer.h(0);
    EXPECT_NE(strip_parameters(longer).key, base);
}

TEST(StructureKey, SentinelsRoundTrip) {
    for (const std::size_t slot : {0u, 1u, 7u, 4096u}) {
        const double v = epoc::circuit::slot_sentinel(slot);
        EXPECT_TRUE(epoc::circuit::is_slot_sentinel(v));
        EXPECT_EQ(epoc::circuit::sentinel_slot(v), slot);
    }
    EXPECT_FALSE(epoc::circuit::is_slot_sentinel(0.0));
    EXPECT_FALSE(epoc::circuit::is_slot_sentinel(3.14159));
    EXPECT_FALSE(epoc::circuit::is_slot_sentinel(-2.0));
}

TEST(StructureKey, ScanAndBindRecoverTheOriginalAngles) {
    // Build a sentinel template by hand, then bind a fresh angle vector.
    Circuit templ(2);
    templ.h(0);
    templ.rzz(epoc::circuit::slot_sentinel(0), 0, 1);
    templ.rx(epoc::circuit::slot_sentinel(1), 0);
    const auto bindings = epoc::circuit::scan_bindings(templ);
    ASSERT_EQ(bindings.size(), 2u);
    EXPECT_EQ(bindings[0].gate, 1u);
    EXPECT_EQ(bindings[1].gate, 2u);

    Circuit bound = templ;
    epoc::circuit::bind_parameters(bound, bindings, {0.25, -1.5});
    EXPECT_DOUBLE_EQ(bound.gate(1).params[0], 0.25);
    EXPECT_DOUBLE_EQ(bound.gate(2).params[0], -1.5);

    // A stale binding (value vector too short) must throw, never half-bind.
    EXPECT_THROW(epoc::circuit::bind_parameters(bound, bindings, {0.25}),
                 std::out_of_range);
}

TEST(PlanCache, SecondCompileOfAStructureIsAPlanHit) {
    EpocOptions opt = cheap_options();
    opt.plan_cache = true;
    EpocCompiler compiler(opt);

    const EpocResult first = compiler.compile(qaoa2(0.4, 0.9));
    EXPECT_FALSE(first.plan_hit); // the build compile
    EXPECT_FALSE(first.degraded);
    EXPECT_EQ(compiler.plan_cache().size(), 1u);

    const EpocResult second = compiler.compile(qaoa2(1.3, -0.6));
    EXPECT_TRUE(second.plan_hit);
    EXPECT_GT(second.plan_blocks_reused, 0u);
    EXPECT_FALSE(second.degraded);
    EXPECT_GT(second.esp, 0.9);

    // A structural edit misses: new build, no false sharing.
    Circuit other = qaoa2(1.3, -0.6);
    other.cx(0, 1);
    const EpocResult third = compiler.compile(other);
    EXPECT_FALSE(third.plan_hit);
    EXPECT_EQ(compiler.plan_cache().size(), 2u);
}

TEST(PlanCache, PlanHitBitIdenticalToColdCompileAcrossThreadCounts) {
    // The reuse contract: a plan-hit compile at angles theta must produce the
    // exact schedule a fresh compiler (which builds the plan itself) produces
    // at theta — for every thread count. Warm starting is off: it is the one
    // deliberately iteration-dependent knob (advisory seeds), and this test
    // pins the reproducible path.
    for (const int threads : {1, 2, 8}) {
        EpocOptions opt = cheap_options();
        opt.plan_cache = true;
        opt.plan_warm_start = false;
        opt.num_threads = threads;

        EpocCompiler warmed(opt);
        (void)warmed.compile(qaoa2(0.4, 0.9)); // builds the plan
        const EpocResult hit = warmed.compile(qaoa2(1.3, -0.6));
        EXPECT_TRUE(hit.plan_hit) << "threads=" << threads;

        EpocCompiler fresh(opt);
        const EpocResult cold = fresh.compile(qaoa2(1.3, -0.6));
        EXPECT_FALSE(cold.plan_hit) << "threads=" << threads;

        EXPECT_EQ(digest(hit.schedule), digest(cold.schedule))
            << "threads=" << threads;
        EXPECT_EQ(hit.latency_ns, cold.latency_ns) << "threads=" << threads;
        EXPECT_EQ(hit.esp, cold.esp) << "threads=" << threads;
        EXPECT_EQ(hit.synthesized_gates, cold.synthesized_gates);
    }
}

TEST(PlanCache, AngleFreeCircuitMatchesThePlanlessPipeline) {
    // With no parametric gates the single param-free segment is the whole
    // circuit, so the plan path must reproduce the ordinary pipeline exactly.
    EpocOptions opt = cheap_options();
    EpocCompiler plain(opt);
    const EpocResult off = plain.compile(epoc::bench::ghz(3));

    opt.plan_cache = true;
    opt.plan_warm_start = false;
    EpocCompiler planned(opt);
    const EpocResult build = planned.compile(epoc::bench::ghz(3));
    const EpocResult hit = planned.compile(epoc::bench::ghz(3));

    EXPECT_TRUE(hit.plan_hit);
    EXPECT_EQ(digest(off.schedule), digest(build.schedule));
    EXPECT_EQ(digest(off.schedule), digest(hit.schedule));
}

} // namespace
