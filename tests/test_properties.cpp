// Cross-module property tests: chains of passes must preserve circuit
// semantics, and reported pulse fidelities must match the physics.
#include "bench_circuits/generators.h"
#include "bench_circuits/random_circuits.h"
#include "circuit/decompose.h"
#include "circuit/peephole.h"
#include "circuit/routing.h"
#include "circuit/unitary.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "epoc/regroup.h"
#include "linalg/phase.h"
#include "partition/partition.h"
#include "qoc/grape.h"
#include "qoc/latency_search.h"
#include "qoc/pulse_io.h"
#include "zx/optimize.h"

#include <gtest/gtest.h>

namespace {

using namespace epoc;
using circuit::Circuit;
using circuit::circuit_unitary;
using linalg::equal_up_to_global_phase;

TEST(Properties, ZxOptimizePreservesEverySuiteCircuit) {
    for (const auto& [name, c] : bench::figure_suite()) {
        if (c.num_qubits() > 7) continue;
        const zx::ZxOptimizeResult r = zx::zx_optimize(c);
        EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(r.circuit),
                                             circuit_unitary(c), 1e-6))
            << name;
        EXPECT_LE(r.depth_after, r.depth_before) << name;
    }
}

TEST(Properties, PassChainPreservesUnitary) {
    // transpile -> peephole -> zx_optimize -> transpile, all composed.
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        bench::RandomCircuitSpec spec;
        spec.seed = seed * 5 + 1;
        spec.num_qubits = 3;
        spec.num_gates = 25;
        const Circuit c = bench::random_circuit(spec);
        Circuit t = circuit::transpile(c, circuit::Basis::RZ_SX_CX);
        t = circuit::peephole_optimize(t);
        t = zx::zx_optimize(t).circuit;
        t = circuit::transpile(t, circuit::Basis::U3_CX);
        EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(t), circuit_unitary(c), 1e-6))
            << seed;
    }
}

TEST(Properties, RouteThenOptimizePreservesUnitary) {
    bench::RandomCircuitSpec spec;
    spec.seed = 77;
    spec.num_qubits = 4;
    spec.num_gates = 18;
    const Circuit c = bench::random_circuit(spec);
    const circuit::RoutingResult r = circuit::route(c, circuit::CouplingMap::linear(4));
    Circuit full = circuit::peephole_optimize(r.circuit);
    full.append(circuit::restore_layout_circuit(r.final_layout));
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(full), circuit_unitary(c), 1e-6));
}

TEST(Properties, LibraryPulseFidelityIsPhysical) {
    // The fidelity a LatencyResult reports must equal the Schroedinger-
    // propagated fidelity of its pulse against the requested unitary.
    const auto h = qoc::make_block_hamiltonian(2);
    qoc::LatencySearchOptions opt;
    opt.fidelity_threshold = 0.995;
    Circuit block(2);
    block.h(0).cx(0, 1).t(1);
    const auto target = circuit_unitary(block);
    const auto r = qoc::find_minimal_latency_pulse(h, target, opt);
    ASSERT_TRUE(r.feasible);
    const auto realised = qoc::pulse_unitary(h, r.pulse);
    EXPECT_NEAR(linalg::hs_fidelity(realised, target), r.pulse.fidelity, 1e-9);
    EXPECT_GE(r.pulse.fidelity, 0.995);
}

TEST(Properties, MinimalLatencyIsMinimal) {
    // One granularity step below the found optimum must fail the threshold
    // (that is what "minimal" means for the binary search).
    const auto h = qoc::make_block_hamiltonian(1);
    qoc::LatencySearchOptions opt;
    opt.fidelity_threshold = 0.995;
    const auto r = qoc::find_minimal_latency_pulse(h, circuit::pauli_x(), opt);
    ASSERT_TRUE(r.feasible);
    ASSERT_GT(r.pulse.num_slots(), 1);
    qoc::GrapeOptions g = opt.grape;
    g.target_fidelity = opt.fidelity_threshold;
    g.seed = opt.grape.seed * 1315423911u +
             static_cast<std::uint64_t>(r.pulse.num_slots() - 1);
    const auto shorter =
        qoc::grape_optimize(h, circuit::pauli_x(), r.pulse.num_slots() - 1, g);
    EXPECT_LT(shorter.fidelity, opt.fidelity_threshold);
}

TEST(Properties, DeterministicAcrossRuns) {
    // The whole QOC stack is seeded: equal inputs give equal pulses.
    const auto h = qoc::make_block_hamiltonian(1);
    qoc::LatencySearchOptions opt;
    const auto a = qoc::find_minimal_latency_pulse(h, circuit::hadamard(), opt);
    const auto b = qoc::find_minimal_latency_pulse(h, circuit::hadamard(), opt);
    EXPECT_EQ(a.pulse.num_slots(), b.pulse.num_slots());
    EXPECT_DOUBLE_EQ(a.pulse.fidelity, b.pulse.fidelity);
    EXPECT_EQ(a.pulse.amplitudes, b.pulse.amplitudes);
}

TEST(Properties, PeepholeIsIdempotent) {
    bench::RandomCircuitSpec spec;
    spec.seed = 9;
    spec.num_qubits = 4;
    spec.num_gates = 40;
    const Circuit c = bench::random_circuit(spec);
    const Circuit once = circuit::peephole_optimize(c);
    const Circuit twice = circuit::peephole_optimize(once);
    EXPECT_EQ(once.size(), twice.size());
}

TEST(Properties, RegroupBlockProductMatchesCircuitUnitary) {
    // Regrouping is a semantic no-op: embedding each regrouped block's
    // unitary back onto its global qubits, in block order, must reproduce
    // the original circuit's unitary up to global phase. This is exactly the
    // oracle the verify layer runs as check_blocks_equiv("regroup", ...).
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        bench::RandomCircuitSpec spec;
        spec.seed = seed * 13 + 3;
        spec.num_qubits = 3 + static_cast<int>(seed % 3); // 3, 4, 5 qubits
        spec.num_gates = 22;
        const Circuit c = bench::random_circuit(spec);
        const int nq = c.num_qubits();
        const auto groups = core::regroup(c, {/*max_qubits=*/3, /*max_gates=*/8});
        ASSERT_FALSE(groups.empty()) << seed;
        linalg::Matrix u = linalg::Matrix::identity(std::size_t{1} << nq);
        for (const auto& blk : groups)
            circuit::apply_gate(u, partition::block_unitary(blk), blk.qubits, nq);
        EXPECT_TRUE(equal_up_to_global_phase(u, circuit_unitary(c), 1e-6)) << seed;
    }
}

TEST(Properties, RegroupEquivalenceHoldsAcrossThreadCounts) {
    // The same property checked in vivo: a full-verify compile re-derives the
    // regroup (and zx/partition) equivalences internally, and both the audit
    // verdicts and the shipped schedule must be identical whether the block
    // loops ran on 1, 2 or 8 workers.
    bench::RandomCircuitSpec spec;
    spec.seed = 41;
    spec.num_qubits = 4;
    spec.num_gates = 16;
    const Circuit c = bench::random_circuit(spec);
    std::uint64_t first_digest = 0;
    std::size_t first_checks = 0;
    bool have_first = false;
    for (const int threads : {1, 2, 8}) {
        core::EpocOptions opt;
        opt.latency.fidelity_threshold = 0.99;
        opt.latency.grape.max_iterations = 120;
        opt.qsearch.threshold = 1e-4;
        opt.qsearch.instantiate.restarts = 2;
        opt.num_threads = threads;
        opt.verify_level = verify::VerifyLevel::full;
        core::EpocCompiler compiler(opt);
        const core::EpocResult r = compiler.compile(c);
        EXPECT_EQ(r.verify.failed, 0u) << threads;
        EXPECT_GT(r.verify.checks, 0u) << threads;
        const std::uint64_t d = qoc::fnv1a64(core::schedule_to_json(r.schedule));
        if (!have_first) {
            first_digest = d;
            first_checks = r.verify.checks;
            have_first = true;
            continue;
        }
        EXPECT_EQ(d, first_digest) << threads;
        EXPECT_EQ(r.verify.checks, first_checks) << threads;
    }
}

TEST(Properties, TranspileIdempotentOnNativeCircuits) {
    const Circuit c = circuit::transpile(bench::ham7(), circuit::Basis::U3_CX);
    const Circuit again = circuit::transpile(c, circuit::Basis::U3_CX);
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(again), circuit_unitary(c), 1e-7));
    for (const auto& g : again.gates())
        EXPECT_TRUE(g.kind == circuit::GateKind::U3 || g.kind == circuit::GateKind::CX);
}

} // namespace
