// Concurrency contract of qoc::PulseLibrary:
//
//   * single-flight: N threads missing on the same phase-equivalence class
//     run exactly one GRAPE latency search (misses == #classes, always);
//   * consistent stats: every lookup is counted exactly once, as hit or miss;
//   * no lost entries: every class ends up in the table exactly once;
//   * reference stability: a result handed out before the table grows past
//     its load factor (rehash!) must stay valid and unchanged -- the
//     historical API returned a reference into the unordered_map, which a
//     concurrent rehash could dangle.
#include "qoc/pulse_library.h"

#include "circuit/gate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <thread>
#include <vector>

namespace {

using namespace epoc::qoc;
using epoc::linalg::Matrix;

/// Cheap search settings: one GRAPE attempt usually clears the bar, so the
/// hammer spends its time in the cache, not in the optimizer.
LatencySearchOptions cheap_search() {
    LatencySearchOptions opt;
    opt.fidelity_threshold = 0.5;
    opt.max_slots = 8;
    opt.grape.max_iterations = 25;
    return opt;
}

/// Member k of phase-equivalence class `cls`: RZ(0.1 + 0.37*cls) times a
/// global phase that varies with k. Phase-aware lookup must collapse all k
/// onto one entry.
Matrix class_member(int cls, int k) {
    Matrix u = epoc::circuit::kind_matrix(epoc::circuit::GateKind::RZ,
                                          {0.1 + 0.37 * cls});
    u *= std::polar(1.0, 0.211 * k);
    return u;
}

TEST(PulseLibraryConcurrent, SingleFlightPerEquivalenceClass) {
    const int kClasses = 6;
    const int kThreads = 8;
    const int kLookupsPerThread = 3 * kClasses;

    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    PulseLibrary lib(true);

    std::atomic<int> start_gate{kThreads};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Rendezvous so all threads hit the cold cache together -- the
            // worst case for single-flight.
            start_gate.fetch_sub(1);
            while (start_gate.load() > 0) std::this_thread::yield();
            for (int i = 0; i < kLookupsPerThread; ++i) {
                const int cls = (i + t) % kClasses; // staggered overlap
                const auto r = lib.get_or_generate(h, class_member(cls, t), opt);
                if (r == nullptr || r->pulse.num_slots() <= 0)
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(failures.load(), 0u);
    // Exactly one generation per class, no matter how the threads raced.
    EXPECT_EQ(lib.stats().misses, static_cast<std::size_t>(kClasses));
    EXPECT_EQ(lib.size(), static_cast<std::size_t>(kClasses));
    // Every lookup is counted exactly once.
    EXPECT_EQ(lib.stats().hits + lib.stats().misses,
              static_cast<std::size_t>(kThreads * kLookupsPerThread));
    // Waiters are a subset of hits.
    EXPECT_LE(lib.stats().single_flight_waits, lib.stats().hits);
}

TEST(PulseLibraryConcurrent, AllThreadsSeeTheSamePulse) {
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    PulseLibrary lib(true);

    const int kThreads = 8;
    std::vector<std::shared_ptr<const LatencyResult>> results(kThreads);
    std::atomic<int> start_gate{kThreads};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            start_gate.fetch_sub(1);
            while (start_gate.load() > 0) std::this_thread::yield();
            results[t] = lib.get_or_generate(h, class_member(0, t), opt);
        });
    }
    for (std::thread& th : threads) th.join();

    // Single-flight means one shared immutable entry: all pointers identical.
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);
    EXPECT_EQ(lib.stats().misses, 1u);
}

TEST(PulseLibraryConcurrent, ResultsSurviveRehash) {
    // Regression: hold the first result, then insert far past any load
    // factor. With the old reference-into-unordered_map API the rehash could
    // move the buckets out from under the caller; the shared_ptr API pins
    // the entry regardless of table growth.
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    PulseLibrary lib(true);

    const auto held = lib.get_or_generate(h, class_member(0, 0), opt);
    const double held_duration = held->pulse.duration();
    const double held_fidelity = held->pulse.fidelity;

    const int kInsertions = 200; // >> 16 shards * default bucket counts
    for (int cls = 1; cls <= kInsertions; ++cls)
        lib.get_or_generate(h, class_member(cls, 0), opt);
    ASSERT_EQ(lib.size(), static_cast<std::size_t>(kInsertions) + 1);

    // The held entry is bit-identical and still the canonical one.
    EXPECT_EQ(held->pulse.duration(), held_duration);
    EXPECT_EQ(held->pulse.fidelity, held_fidelity);
    const auto again = lib.get_or_generate(h, class_member(0, 1), opt);
    EXPECT_EQ(again, held); // same shared entry, not a regenerated copy
}

TEST(PulseLibraryConcurrent, ConcurrentInsertsLoseNothing) {
    // Distinct keys from every thread: all must land, none overwritten.
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    PulseLibrary lib(true);

    const int kThreads = 6;
    const int kPerThread = 20;
    std::atomic<int> start_gate{kThreads};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            start_gate.fetch_sub(1);
            while (start_gate.load() > 0) std::this_thread::yield();
            for (int i = 0; i < kPerThread; ++i)
                lib.get_or_generate(h, class_member(t * kPerThread + i, 0), opt);
        });
    }
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(lib.size(), static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(lib.stats().misses, static_cast<std::size_t>(kThreads * kPerThread));
    // Each thread's lookups were all distinct keys it inserted itself, so
    // hits can only come from cross-thread overlap -- there is none here.
    EXPECT_EQ(lib.stats().hits, 0u);
}

TEST(PulseLibraryConcurrent, PeekNeverBlocksOrGenerates) {
    PulseLibrary lib(true);
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    EXPECT_EQ(lib.peek(h, epoc::circuit::hadamard(), opt), nullptr);
    lib.get_or_generate(h, epoc::circuit::hadamard(), opt);
    const auto p = lib.peek(h, epoc::circuit::hadamard(), opt);
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->pulse.num_slots(), 0);
    EXPECT_EQ(lib.stats().hits, 0u); // peek leaves the stats alone
}

} // namespace
