// Failure-injection tests for the OpenQASM parser: every malformed input must
// raise QasmError (with a line number), never crash or silently mis-parse.
#include "circuit/qasm.h"

#include <gtest/gtest.h>

namespace {

using namespace epoc::circuit;

class QasmBadInput : public ::testing::TestWithParam<const char*> {};

TEST_P(QasmBadInput, RaisesQasmError) {
    EXPECT_THROW(parse_qasm(GetParam()), QasmError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QasmBadInput,
    ::testing::Values(
        "qreg q[2]; h q[0]",                      // missing semicolon at EOF
        "qreg q[2]; cx q[0];",                    // wrong operand count
        "qreg q[2]; rz() q[0];",                  // rz demands a parameter
        "qreg q[2]; rz(pi q[0];",                 // unbalanced paren
        "qreg q[2]; h r[0];",                     // unknown register
        "qreg q[2]; h q[2];",                     // index out of range
        "qreg q[2]; frobnicate q[0];",            // unknown gate
        "qreg q[2]; rz(bogus) q[0];",             // unknown identifier in expr
        "qreg q[2]; rz(sin(pi) q[0];",            // unbalanced function call
        "gate broken a { h a;",                   // unterminated gate body
        "qreg q[2]; if (c == 1) h q[0];",         // classical control unsupported
        "qreg q[1]; include \"unterminated;",     // unterminated string
        "qreg q[1]; h q[",                        // truncated index
        "qreg q[2]; gate g a,b { h c; } g q[0],q[1];", // unknown body operand
        "qreg q[2]; gate g(x) a { rz(x) a; } g q[0];", // missing param binding
        "qreg q[2]; cx q[0],q[0];",                // duplicate operand
        "qreg q[1]; h q[0]; \"oops",               // unterminated bare string
        "qreg q[2]; qreg q[3]; h q[2];",           // qreg redeclaration
        "qreg q[2]; creg q[2];",                   // creg shadows qreg name
        "qreg q[2]; h q[0],q[1];",                 // builtin gate arity mismatch
        "qreg q[2]; ccx q[0],q[1];",               // 3-qubit gate, 2 operands
        "qreg q[2]; h q[4000000000];",             // index overflows int
        "qreg q[4000000000]; h q[0];",             // register size overflows int
        "qreg q[0]; h q[0];",                      // empty register
        "qreg q[1]; rz(1e999999999) q[0];",        // literal overflows double
        "qreg q[1]; rz(.) q[0];"));                // lone dot is not a number

TEST(QasmRobustness, RedeclarationDoesNotCorruptNumbering) {
    // The old parser silently overwrote the register entry *and* kept
    // growing the qubit count -- indices shifted and gates landed on the
    // wrong wires. Now it must be a hard error, before any gate is emitted.
    try {
        parse_qasm("qreg q[2]; h q[1]; qreg q[2]; cx q[0],q[1];");
        FAIL() << "redeclaration accepted";
    } catch (const QasmError& e) {
        EXPECT_NE(std::string(e.what()).find("already declared"), std::string::npos);
    }
}

TEST(QasmRobustness, HugeIndexReportsRangeNotWraparound) {
    // 2^32 cast to int wraps to 0, which would silently alias q[0]; the
    // parser must range-check on the unconverted value instead.
    try {
        parse_qasm("qreg q[2]; h q[4294967296];");
        FAIL() << "wrapped index accepted";
    } catch (const QasmError& e) {
        EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
    }
}

TEST(QasmRobustness, ErrorLineNumbersMatchCallerSource) {
    // parse_qasm prepends a builtin u2 prelude; it must not shift the
    // reported line numbers off the source the caller actually wrote.
    try {
        parse_qasm("qreg q[1];\nqreg q[1];\n");
        FAIL() << "redeclaration accepted";
    } catch (const QasmError& e) {
        EXPECT_EQ(e.line(), 2);
    }
    try {
        parse_qasm("qreg q[1];\n\n\nh q[99];\n");
        FAIL() << "out-of-range index accepted";
    } catch (const QasmError& e) {
        EXPECT_EQ(e.line(), 4);
    }
}

TEST(QasmRobustness, ErrorsIncludeUsefulText) {
    try {
        parse_qasm("qreg q[1];\nfrobnicate q[0];");
        FAIL();
    } catch (const QasmError& e) {
        EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("qasm:"), std::string::npos);
    }
}

TEST(QasmRobustness, EmptyProgramIsEmptyCircuit) {
    const Circuit c = parse_qasm("");
    EXPECT_EQ(c.num_qubits(), 0);
    EXPECT_EQ(c.size(), 0u);
}

TEST(QasmRobustness, CommentsAndWhitespaceIgnored) {
    const Circuit c = parse_qasm(
        "// header comment\nqreg q[1];\n\n  // indented\n\th q[0]; // trailing\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmRobustness, MultipleRegistersConcatenate) {
    const Circuit c = parse_qasm("qreg a[2]; qreg b[3]; h a[1]; x b[0];");
    EXPECT_EQ(c.num_qubits(), 5);
    EXPECT_EQ(c.gate(0).qubits[0], 1);
    EXPECT_EQ(c.gate(1).qubits[0], 2); // b starts after a
}

TEST(QasmRobustness, MeasureBarrierResetIgnored) {
    const Circuit c = parse_qasm(
        "qreg q[2]; creg c[2]; h q[0]; barrier q; measure q -> c; reset q[1];");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmRobustness, ScientificNotationNumbers) {
    const Circuit c = parse_qasm("qreg q[1]; rz(1.5e-1) q[0];");
    EXPECT_NEAR(c.gate(0).params[0], 0.15, 1e-12);
}

TEST(QasmRobustness, NestedCustomGates) {
    const std::string src = R"(
qreg q[2];
gate inner a { h a; }
gate outer a,b { inner a; cx a,b; inner b; }
outer q[0],q[1];
)";
    EXPECT_EQ(parse_qasm(src).size(), 3u);
}

TEST(QasmRobustness, DeepExpressionNesting) {
    const Circuit c = parse_qasm("qreg q[1]; rz(-(((pi/2)+1)*2 - sqrt(4))) q[0];");
    EXPECT_NEAR(c.gate(0).params[0], -((3.14159265358979312 / 2 + 1) * 2 - 2), 1e-9);
}

} // namespace
