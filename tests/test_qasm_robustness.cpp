// Failure-injection tests for the OpenQASM parser: every malformed input must
// raise QasmError (with a line number), never crash or silently mis-parse.
#include "circuit/qasm.h"

#include "bench_circuits/generators.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <string>
#include <vector>

namespace {

using namespace epoc::circuit;

class QasmBadInput : public ::testing::TestWithParam<const char*> {};

TEST_P(QasmBadInput, RaisesQasmError) {
    EXPECT_THROW(parse_qasm(GetParam()), QasmError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QasmBadInput,
    ::testing::Values(
        "qreg q[2]; h q[0]",                      // missing semicolon at EOF
        "qreg q[2]; cx q[0];",                    // wrong operand count
        "qreg q[2]; rz() q[0];",                  // rz demands a parameter
        "qreg q[2]; rz(pi q[0];",                 // unbalanced paren
        "qreg q[2]; h r[0];",                     // unknown register
        "qreg q[2]; h q[2];",                     // index out of range
        "qreg q[2]; frobnicate q[0];",            // unknown gate
        "qreg q[2]; rz(bogus) q[0];",             // unknown identifier in expr
        "qreg q[2]; rz(sin(pi) q[0];",            // unbalanced function call
        "gate broken a { h a;",                   // unterminated gate body
        "qreg q[2]; if (c == 1) h q[0];",         // classical control unsupported
        "qreg q[1]; include \"unterminated;",     // unterminated string
        "qreg q[1]; h q[",                        // truncated index
        "qreg q[2]; gate g a,b { h c; } g q[0],q[1];", // unknown body operand
        "qreg q[2]; gate g(x) a { rz(x) a; } g q[0];", // missing param binding
        "qreg q[2]; cx q[0],q[0];",                // duplicate operand
        "qreg q[1]; h q[0]; \"oops",               // unterminated bare string
        "qreg q[2]; qreg q[3]; h q[2];",           // qreg redeclaration
        "qreg q[2]; creg q[2];",                   // creg shadows qreg name
        "qreg q[2]; h q[0],q[1];",                 // builtin gate arity mismatch
        "qreg q[2]; ccx q[0],q[1];",               // 3-qubit gate, 2 operands
        "qreg q[2]; h q[4000000000];",             // index overflows int
        "qreg q[4000000000]; h q[0];",             // register size overflows int
        "qreg q[0]; h q[0];",                      // empty register
        "qreg q[1]; rz(1e999999999) q[0];",        // literal overflows double
        "qreg q[1]; rz(.) q[0];"));                // lone dot is not a number

TEST(QasmRobustness, RedeclarationDoesNotCorruptNumbering) {
    // The old parser silently overwrote the register entry *and* kept
    // growing the qubit count -- indices shifted and gates landed on the
    // wrong wires. Now it must be a hard error, before any gate is emitted.
    try {
        parse_qasm("qreg q[2]; h q[1]; qreg q[2]; cx q[0],q[1];");
        FAIL() << "redeclaration accepted";
    } catch (const QasmError& e) {
        EXPECT_NE(std::string(e.what()).find("already declared"), std::string::npos);
    }
}

TEST(QasmRobustness, HugeIndexReportsRangeNotWraparound) {
    // 2^32 cast to int wraps to 0, which would silently alias q[0]; the
    // parser must range-check on the unconverted value instead.
    try {
        parse_qasm("qreg q[2]; h q[4294967296];");
        FAIL() << "wrapped index accepted";
    } catch (const QasmError& e) {
        EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
    }
}

TEST(QasmRobustness, ErrorLineNumbersMatchCallerSource) {
    // parse_qasm prepends a builtin u2 prelude; it must not shift the
    // reported line numbers off the source the caller actually wrote.
    try {
        parse_qasm("qreg q[1];\nqreg q[1];\n");
        FAIL() << "redeclaration accepted";
    } catch (const QasmError& e) {
        EXPECT_EQ(e.line(), 2);
    }
    try {
        parse_qasm("qreg q[1];\n\n\nh q[99];\n");
        FAIL() << "out-of-range index accepted";
    } catch (const QasmError& e) {
        EXPECT_EQ(e.line(), 4);
    }
}

TEST(QasmRobustness, ErrorsIncludeUsefulText) {
    try {
        parse_qasm("qreg q[1];\nfrobnicate q[0];");
        FAIL();
    } catch (const QasmError& e) {
        EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("qasm:"), std::string::npos);
    }
}

TEST(QasmRobustness, EmptyProgramIsEmptyCircuit) {
    const Circuit c = parse_qasm("");
    EXPECT_EQ(c.num_qubits(), 0);
    EXPECT_EQ(c.size(), 0u);
}

TEST(QasmRobustness, CommentsAndWhitespaceIgnored) {
    const Circuit c = parse_qasm(
        "// header comment\nqreg q[1];\n\n  // indented\n\th q[0]; // trailing\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmRobustness, MultipleRegistersConcatenate) {
    const Circuit c = parse_qasm("qreg a[2]; qreg b[3]; h a[1]; x b[0];");
    EXPECT_EQ(c.num_qubits(), 5);
    EXPECT_EQ(c.gate(0).qubits[0], 1);
    EXPECT_EQ(c.gate(1).qubits[0], 2); // b starts after a
}

TEST(QasmRobustness, MeasureBarrierResetIgnored) {
    const Circuit c = parse_qasm(
        "qreg q[2]; creg c[2]; h q[0]; barrier q; measure q -> c; reset q[1];");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmRobustness, ScientificNotationNumbers) {
    const Circuit c = parse_qasm("qreg q[1]; rz(1.5e-1) q[0];");
    EXPECT_NEAR(c.gate(0).params[0], 0.15, 1e-12);
}

TEST(QasmRobustness, NestedCustomGates) {
    const std::string src = R"(
qreg q[2];
gate inner a { h a; }
gate outer a,b { inner a; cx a,b; inner b; }
outer q[0],q[1];
)";
    EXPECT_EQ(parse_qasm(src).size(), 3u);
}

TEST(QasmRobustness, DeepExpressionNesting) {
    const Circuit c = parse_qasm("qreg q[1]; rz(-(((pi/2)+1)*2 - sqrt(4))) q[0];");
    EXPECT_NEAR(c.gate(0).params[0], -((3.14159265358979312 / 2 + 1) * 2 - 2), 1e-9);
}

// ---------------------------------------------------------------------------
// Deterministic fuzz smoke test: ~1k seeded mutations of well-formed
// programs. The contract under fuzz is binary — parse_qasm either returns a
// circuit or throws QasmError. Any other exception, or a crash, fails (and
// the ASan CI job additionally turns latent memory errors into hard
// failures). The corpus and the mutator are fully deterministic (fixed seed,
// no time/address dependence), so a failure here reproduces everywhere.

std::vector<std::string> fuzz_corpus() {
    std::vector<std::string> corpus = {
        "qreg q[3]; h q[0]; cx q[0],q[1]; rz(pi/4) q[2]; cx q[1],q[2];",
        "qreg a[2]; qreg b[2]; creg c[2];\n"
        "gate g(x) p,q { rz(x) p; cx p,q; }\n"
        "g(0.5) a[0],b[1]; barrier a; measure a -> c;",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
        "u3(pi/2,0,pi) q[0];\ncx q[0],q[1];\n",
    };
    // Real emitted programs: round-trip the benchmark suite through to_qasm
    // so the mutator starts from everything the exporter can produce.
    for (const auto& nc : epoc::bench::figure_suite())
        corpus.push_back(to_qasm(nc.circuit));
    return corpus;
}

std::string mutate(const std::string& base, std::mt19937_64& rng) {
    static const char kInserts[] = "qh;[](){},.\"\\/*-+0x\n\t ";
    std::string s = base;
    const int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
        if (s.empty()) s.push_back(';'); // (assignment trips GCC12 -Wrestrict)
        const std::size_t pos = rng() % s.size();
        switch (rng() % 5) {
        case 0: // flip a byte (any value: embedded NUL, high-bit, ...)
            s[pos] = static_cast<char>(rng() % 256);
            break;
        case 1: // truncate
            s.resize(pos);
            break;
        case 2: { // duplicate a slice onto a random point
            const std::size_t len = std::min<std::size_t>(rng() % 32, s.size() - pos);
            const std::string slice = s.substr(pos, len);
            s.insert(rng() % (s.size() + 1), slice);
            break;
        }
        case 3: // splice a token boundary character
            s.insert(pos, 1, kInserts[rng() % (sizeof(kInserts) - 1)]);
            break;
        default: { // swap two regions (token reordering)
            const std::size_t other = rng() % s.size();
            std::swap(s[pos], s[other]);
            break;
        }
        }
    }
    return s;
}

TEST(QasmFuzz, SeededMutationsParseOrRaiseQasmErrorNeverCrash) {
    const std::vector<std::string> corpus = fuzz_corpus();
    ASSERT_FALSE(corpus.empty());
    std::mt19937_64 rng(0x45504F43); // "EPOC": fixed seed, deterministic run
    const int kCases = 1000;
    int parsed = 0, rejected = 0;
    for (int i = 0; i < kCases; ++i) {
        const std::string input = mutate(corpus[i % corpus.size()], rng);
        try {
            const Circuit c = parse_qasm(input);
            (void)c.size(); // the returned circuit must at least be readable
            ++parsed;
        } catch (const QasmError&) {
            ++rejected; // the one sanctioned failure mode
        }
        // Anything else (std::bad_alloc aside) propagates and fails the test.
    }
    EXPECT_EQ(parsed + rejected, kCases);
    // Sanity on the mutator itself: it must exercise both outcomes, or the
    // corpus/mutations have gone degenerate and the test is vacuous.
    EXPECT_GT(parsed, 0) << "every mutation broke the program";
    EXPECT_GT(rejected, 0) << "no mutation ever broke the program";
}

} // namespace
