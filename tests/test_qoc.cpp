#include "qoc/grape.h"
#include "qoc/hamiltonian.h"
#include "qoc/latency_search.h"
#include "qoc/pulse_library.h"

#include "circuit/circuit.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "util/deadline.h"
#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace {

using namespace epoc::qoc;
using epoc::circuit::Circuit;
using epoc::circuit::GateKind;
using epoc::linalg::Matrix;

TEST(Hamiltonian, SingleQubitModel) {
    const auto h = make_block_hamiltonian(1);
    EXPECT_EQ(h.drift.rows(), 2u);
    EXPECT_EQ(h.controls.size(), 2u); // x, y drives only, no coupler
}

TEST(Hamiltonian, TwoQubitModelHasCoupler) {
    const auto h = make_block_hamiltonian(2);
    EXPECT_EQ(h.drift.rows(), 4u);
    EXPECT_EQ(h.controls.size(), 5u); // 2*(x,y) + 1 coupler
    EXPECT_EQ(h.controls.back().label, "xx0_1");
}

TEST(Hamiltonian, ThreeQubitModelCouplerCount) {
    const auto h = make_block_hamiltonian(3);
    EXPECT_EQ(h.controls.size(), 9u); // 6 drives + 3 couplers
}

TEST(Hamiltonian, DriftIsHermitian) {
    const auto h = make_block_hamiltonian(3);
    EXPECT_LT(h.drift.max_abs_diff(h.drift.dagger()), 1e-12);
    for (const auto& c : h.controls)
        EXPECT_LT(c.h.max_abs_diff(c.h.dagger()), 1e-12);
}

TEST(Hamiltonian, RejectsNonPositive) {
    EXPECT_THROW(make_block_hamiltonian(0), std::invalid_argument);
}

TEST(Grape, ReachesXGate) {
    const auto h = make_block_hamiltonian(1);
    GrapeOptions opt;
    opt.target_fidelity = 0.999;
    const Pulse p = grape_optimize(h, epoc::circuit::pauli_x(), 8, opt);
    EXPECT_GE(p.fidelity, 0.999);
    // Cross-check: the claimed fidelity matches the realised propagator.
    const Matrix u = pulse_unitary(h, p);
    EXPECT_NEAR(epoc::linalg::hs_fidelity(u, epoc::circuit::pauli_x()), p.fidelity, 1e-6);
}

TEST(Grape, ReachesCnot) {
    const auto h = make_block_hamiltonian(2);
    GrapeOptions opt;
    opt.target_fidelity = 0.995;
    const Pulse p =
        grape_optimize(h, epoc::circuit::kind_matrix(GateKind::CX, {}), 24, opt);
    EXPECT_GE(p.fidelity, 0.995);
}

TEST(Grape, RespectsAmplitudeBounds) {
    const auto h = make_block_hamiltonian(2);
    const Pulse p =
        grape_optimize(h, epoc::circuit::kind_matrix(GateKind::CX, {}), 24, {});
    for (std::size_t j = 0; j < h.controls.size(); ++j)
        for (const double a : p.amplitudes[j])
            EXPECT_LE(std::abs(a), h.controls[j].bound + 1e-12);
}

TEST(Grape, TooFewSlotsCannotReachTarget) {
    const auto h = make_block_hamiltonian(1);
    // A pi rotation at bounded amplitude needs ~10ns; one 2ns slot cannot.
    const Pulse p = grape_optimize(h, epoc::circuit::pauli_x(), 1, {});
    EXPECT_LT(p.fidelity, 0.9);
}

TEST(Grape, WarmStartSpeedsConvergence) {
    const auto h = make_block_hamiltonian(1);
    GrapeOptions cold;
    cold.target_fidelity = 0.9999;
    const Pulse p1 = grape_optimize(h, epoc::circuit::hadamard(), 8, cold);
    GrapeOptions warm = cold;
    warm.warm_amplitudes = p1.amplitudes;
    const Pulse p2 = grape_optimize(h, epoc::circuit::hadamard(), 8, warm);
    EXPECT_LE(p2.grape_iterations, p1.grape_iterations);
    EXPECT_GE(p2.fidelity, p1.fidelity - 1e-6);
}

TEST(Grape, InvalidArgumentsThrow) {
    const auto h = make_block_hamiltonian(1);
    EXPECT_THROW(grape_optimize(h, Matrix::identity(4), 8, {}), std::invalid_argument);
    EXPECT_THROW(grape_optimize(h, Matrix::identity(2), 0, {}), std::invalid_argument);
}

TEST(LatencySearch, SxShorterThanX) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    const auto rx = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    const auto rsx =
        find_minimal_latency_pulse(h, epoc::circuit::kind_matrix(GateKind::SX, {}), opt);
    EXPECT_TRUE(rx.feasible);
    EXPECT_TRUE(rsx.feasible);
    EXPECT_LT(rsx.pulse.duration(), rx.pulse.duration());
}

TEST(LatencySearch, GroupedBlockBeatsSequentialGates) {
    // The paper's central physical claim (Fig. 7/8): one pulse for a block is
    // shorter than the concatenation of its per-gate pulses.
    const auto h2 = make_block_hamiltonian(2);
    const auto h1 = make_block_hamiltonian(1);
    LatencySearchOptions opt;

    Circuit block(2);
    block.h(0).cx(0, 1);
    const auto grouped =
        find_minimal_latency_pulse(h2, epoc::circuit::circuit_unitary(block), opt);
    const auto h_only = find_minimal_latency_pulse(h1, epoc::circuit::hadamard(), opt);
    const auto cx_only = find_minimal_latency_pulse(
        h2, epoc::circuit::kind_matrix(GateKind::CX, {}), opt);
    EXPECT_TRUE(grouped.feasible);
    EXPECT_LT(grouped.pulse.duration(),
              h_only.pulse.duration() + cx_only.pulse.duration());
}

TEST(LatencySearch, GranularityRoundsUp) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.slot_granularity = 4;
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.pulse.num_slots() % 4, 0);
}

TEST(LatencySearch, InfeasibleReported) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.max_slots = 1; // nothing nontrivial fits in 2ns
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_FALSE(r.feasible);
}

TEST(PulseLibrary, CachesByUnitary) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions opt;
    const auto r1 = lib.get_or_generate(h, epoc::circuit::hadamard(), opt);
    const double d1 = r1->pulse.duration();
    const auto r2 = lib.get_or_generate(h, epoc::circuit::hadamard(), opt);
    EXPECT_EQ(lib.stats().hits, 1u);
    EXPECT_EQ(lib.stats().misses, 1u);
    EXPECT_EQ(r2->pulse.duration(), d1);
}

TEST(PulseLibrary, PhaseAwareHitsPhaseShiftedUnitary) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions opt;
    const Matrix u = epoc::circuit::hadamard();
    lib.get_or_generate(h, u, opt);
    Matrix shifted = u;
    shifted *= std::polar(1.0, 1.234);
    lib.get_or_generate(h, shifted, opt);
    EXPECT_EQ(lib.stats().hits, 1u);
}

TEST(PulseLibrary, PhaseObliviousMisses) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(false); // AccQOC/PAQOC-style raw lookup
    LatencySearchOptions opt;
    const Matrix u = epoc::circuit::hadamard();
    lib.get_or_generate(h, u, opt);
    Matrix shifted = u;
    shifted *= std::polar(1.0, 1.234);
    lib.get_or_generate(h, shifted, opt);
    EXPECT_EQ(lib.stats().hits, 0u);
    EXPECT_EQ(lib.size(), 2u);
}

TEST(PulseLibrary, PeekDoesNotGenerate) {
    PulseLibrary lib(true);
    const auto h = make_block_hamiltonian(1);
    EXPECT_EQ(lib.peek(h, epoc::circuit::hadamard(), LatencySearchOptions{}), nullptr);
    EXPECT_EQ(lib.size(), 0u);
}

// Regression for the cache-key collision: the library used to key on the
// unitary alone, so a coarse-granularity request silently received the
// fine-granularity pulse generated earlier for the same unitary, and the
// wide-block slot coarsening never applied on hits.
TEST(PulseLibrary, GranularityKeyedSeparately) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions fine;
    LatencySearchOptions coarse;
    coarse.slot_granularity = 4;

    // Fine-granularity arm runs first, exactly like the pipeline.
    const auto rf = lib.get_or_generate(h, epoc::circuit::pauli_x(), fine);
    const auto rc = lib.get_or_generate(h, epoc::circuit::pauli_x(), coarse);
    EXPECT_EQ(lib.stats().misses, 2u) << "coarse request must not hit the fine entry";
    EXPECT_EQ(lib.stats().hits, 0u);
    EXPECT_EQ(rc->pulse.num_slots() % 4, 0)
        << "coarse arm's pulse must reflect the coarsened slot search";
    EXPECT_GE(rc->pulse.num_slots(), rf->pulse.num_slots());

    // Same options again: a hit, and the exact shared entry.
    const auto again = lib.get_or_generate(h, epoc::circuit::pauli_x(), coarse);
    EXPECT_EQ(again, rc);
    EXPECT_EQ(lib.stats().hits, 1u);
}

TEST(PulseLibrary, SearchOptionsKeyedSeparately) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions a;
    a.fidelity_threshold = 0.99;
    LatencySearchOptions b = a;
    b.fidelity_threshold = 0.9999;
    lib.get_or_generate(h, epoc::circuit::hadamard(), a);
    lib.get_or_generate(h, epoc::circuit::hadamard(), b);
    LatencySearchOptions c = a;
    c.max_slots = 64;
    lib.get_or_generate(h, epoc::circuit::hadamard(), c);
    EXPECT_EQ(lib.stats().misses, 3u);
    EXPECT_EQ(lib.stats().hits, 0u);
}

TEST(PulseLibrary, NearEqualDoublesKeyedSeparately) {
    // Regression for the precision(12) keying bug: two learning rates one ulp
    // apart rendered to the same 12-significant-digit string and collided
    // into one cache entry. Keys now encode doubles by exact bit pattern
    // (qoc/pulse_io.h), so any representable difference splits the entries —
    // which also keeps the on-disk store's content addresses exact.
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions a;
    a.grape.learning_rate = 0.003;
    LatencySearchOptions b = a;
    b.grape.learning_rate =
        std::nextafter(a.grape.learning_rate, 1.0); // differs past 12 digits
    ASSERT_NE(a.grape.learning_rate, b.grape.learning_rate);
    lib.get_or_generate(h, epoc::circuit::pauli_x(), a);
    lib.get_or_generate(h, epoc::circuit::pauli_x(), b);
    EXPECT_EQ(lib.stats().misses, 2u)
        << "near-equal learning rates must key distinct entries";
    EXPECT_EQ(lib.stats().hits, 0u);

    // And exact re-lookup under each still hits its own entry.
    lib.get_or_generate(h, epoc::circuit::pauli_x(), a);
    lib.get_or_generate(h, epoc::circuit::pauli_x(), b);
    EXPECT_EQ(lib.stats().hits, 2u);
}

TEST(PulseLibrary, DeviceKeyedSeparately) {
    // Same unitary, different device model: the pulses are physically
    // incompatible and must never be traded through the cache.
    DeviceParams slow;
    slow.drive_bound = 0.08;
    const auto h_default = make_block_hamiltonian(1);
    const auto h_slow = make_block_hamiltonian(1, slow);
    PulseLibrary lib(true);
    LatencySearchOptions opt;
    lib.get_or_generate(h_default, epoc::circuit::pauli_x(), opt);
    lib.get_or_generate(h_slow, epoc::circuit::pauli_x(), opt);
    EXPECT_EQ(lib.stats().misses, 2u);
    EXPECT_EQ(lib.stats().hits, 0u);
}

TEST(PulseLibrary, WarmStartDoesNotSplitKeys) {
    // AccQOC's MST construction generates under warm-started options and
    // looks the entry up later under the plain options: same key.
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions plain;
    const auto parent = lib.get_or_generate(h, epoc::circuit::pauli_x(), plain);
    LatencySearchOptions warm = plain;
    warm.grape.warm_amplitudes = parent->pulse.amplitudes;
    lib.get_or_generate(h, epoc::circuit::hadamard(), warm);
    EXPECT_EQ(lib.peek(h, epoc::circuit::hadamard(), plain) != nullptr, true);
    const auto hit = lib.get_or_generate(h, epoc::circuit::hadamard(), plain);
    EXPECT_EQ(lib.stats().hits, 1u);
    EXPECT_EQ(lib.stats().misses, 2u);
    EXPECT_GT(hit->pulse.num_slots(), 0);
}

TEST(LatencySearch, CapNeverExceedsMaxSlots) {
    // round_up(max_slots) used to probe up to granularity-1 slots past the
    // configured budget; the cap is now the largest multiple of the
    // granularity <= max_slots.
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.slot_granularity = 4;
    opt.max_slots = 10; // cap must be 8, never 12
    opt.fidelity_threshold = 0.999999; // unreachable: forces the full doubling
    opt.grape.max_iterations = 5;
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_FALSE(r.feasible);
    EXPECT_LE(r.pulse.num_slots(), 10);
    EXPECT_EQ(r.pulse.num_slots(), 8) << "bracket must stop at the clamped cap";
}

TEST(LatencySearch, FeasibleUnderClampedCap) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.slot_granularity = 4;
    opt.max_slots = 21; // effective cap 20: never probe 24 (the old round-up)
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.pulse.num_slots() % 4, 0);
    EXPECT_LE(r.pulse.num_slots(), 21);
}

TEST(LatencySearch, GranularityAboveMaxSlotsProbesOneUnit) {
    // No multiple of the granularity fits under max_slots: the documented
    // fallback probes exactly one granularity unit.
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.slot_granularity = 8;
    opt.max_slots = 5;
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_EQ(r.pulse.num_slots(), 8);
    EXPECT_EQ(r.grape_runs, 1);
}

TEST(Grape, NoControlsIsSafe) {
    // nc == 0 plus an empty warm_amplitudes used to read .front() of an empty
    // vector (UB). The optimizer must degrade gracefully: nothing to drive.
    BlockHamiltonian h;
    h.num_qubits = 1;
    h.drift = Matrix::identity(2);
    h.dt = 2.0;
    GrapeOptions opt;
    opt.max_iterations = 3;
    const Pulse p = grape_optimize(h, Matrix::identity(2), 4, opt);
    EXPECT_EQ(p.num_slots(), 0); // no control lines -> no amplitude rows
    EXPECT_FALSE(p.warm_start_applied);
    EXPECT_FALSE(p.warm_start_mismatch);
}

TEST(Grape, WarmStartShapeMismatchSurfaced) {
    const auto h = make_block_hamiltonian(1); // 2 control lines
    GrapeOptions opt;
    opt.max_iterations = 10;
    opt.warm_amplitudes = {{0.1, 0.1}}; // 1 row: wrong control count
    const Pulse p = grape_optimize(h, epoc::circuit::pauli_x(), 8, opt);
    EXPECT_FALSE(p.warm_start_applied);
    EXPECT_TRUE(p.warm_start_mismatch) << "mismatch must be reported, not dropped";

    GrapeOptions good = opt;
    good.warm_amplitudes = {{0.1, 0.1}, {0.1, 0.1}};
    const Pulse q = grape_optimize(h, epoc::circuit::pauli_x(), 8, good);
    EXPECT_TRUE(q.warm_start_applied);
    EXPECT_FALSE(q.warm_start_mismatch);
}

// ---------------------------------------------------------------------------
// Fidelity/amplitude consistency: whatever path a search exits through
// (feasible, infeasible, timed out, nonfinite-aborted), the recorded fidelity
// must be the fidelity OF THE RETURNED AMPLITUDES — re-simulating the pulse
// must reproduce it to float noise. The verify layer's schedule audit flags
// any pulse violating this as corrupt, so a drifting pair here would turn
// every degraded compile into a (false) verification failure.

struct LocalFaultGuard {
    explicit LocalFaultGuard(const std::string& spec) {
        epoc::util::fault::configure(spec);
    }
    ~LocalFaultGuard() { epoc::util::fault::clear(); }
};

double resim_error(const BlockHamiltonian& h, const Matrix& target, const Pulse& p) {
    double f = epoc::linalg::hs_fidelity(target, pulse_unitary(h, p));
    if (!std::isfinite(f)) f = 0.0;
    return std::abs(p.fidelity - f);
}

TEST(LatencySearch, FeasibleFidelityMatchesReturnedAmplitudes) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.fidelity_threshold = 0.99;
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    ASSERT_TRUE(r.feasible);
    EXPECT_LT(resim_error(h, epoc::circuit::pauli_x(), r.pulse), 1e-9);
}

TEST(LatencySearch, InfeasibleFidelityMatchesReturnedAmplitudes) {
    // The infeasible exit ships the best bracket probe; its recorded fidelity
    // must still belong to the shipped amplitudes, not to some probe the
    // search later overwrote.
    const auto h = make_block_hamiltonian(2);
    LatencySearchOptions opt;
    opt.max_slots = 1; // even a CX cannot land in one slot
    opt.fidelity_threshold = 0.999;
    opt.grape.max_iterations = 40;
    Circuit cx(2);
    cx.cx(0, 1);
    const Matrix target = epoc::circuit::circuit_unitary(cx);
    const auto r = find_minimal_latency_pulse(h, target, opt);
    ASSERT_FALSE(r.feasible);
    EXPECT_LT(resim_error(h, target, r.pulse), 1e-9);
}

TEST(LatencySearch, TimedOutFidelityMatchesReturnedAmplitudes) {
    // A pre-expired deadline forces the earliest best-effort exit.
    const auto h = make_block_hamiltonian(1);
    const auto deadline = epoc::util::Deadline::after_ms(0.0);
    ASSERT_TRUE(deadline.expired());
    LatencySearchOptions opt;
    opt.fidelity_threshold = 0.99;
    opt.deadline = &deadline;
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_TRUE(r.timed_out);
    EXPECT_FALSE(r.authoritative());
    EXPECT_LT(resim_error(h, epoc::circuit::pauli_x(), r.pulse), 1e-9);
}

TEST(LatencySearch, NonfiniteAbortFidelityMatchesReturnedAmplitudes) {
    // grape.nonfinite=* aborts every GRAPE run after re-randomizing: the
    // regression this pins is the abort path returning re-randomized
    // amplitudes with the fidelity of the pre-abort iterate.
    const auto h = make_block_hamiltonian(1);
    const LocalFaultGuard g("grape.nonfinite=*");
    LatencySearchOptions opt;
    opt.fidelity_threshold = 0.99;
    opt.grape.max_iterations = 30;
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_TRUE(r.pulse.nonfinite_aborted);
    EXPECT_FALSE(r.authoritative());
    EXPECT_LT(resim_error(h, epoc::circuit::pauli_x(), r.pulse), 1e-9);
}

} // namespace
