#include "qoc/grape.h"
#include "qoc/hamiltonian.h"
#include "qoc/latency_search.h"
#include "qoc/pulse_library.h"

#include "circuit/circuit.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace epoc::qoc;
using epoc::circuit::Circuit;
using epoc::circuit::GateKind;
using epoc::linalg::Matrix;

TEST(Hamiltonian, SingleQubitModel) {
    const auto h = make_block_hamiltonian(1);
    EXPECT_EQ(h.drift.rows(), 2u);
    EXPECT_EQ(h.controls.size(), 2u); // x, y drives only, no coupler
}

TEST(Hamiltonian, TwoQubitModelHasCoupler) {
    const auto h = make_block_hamiltonian(2);
    EXPECT_EQ(h.drift.rows(), 4u);
    EXPECT_EQ(h.controls.size(), 5u); // 2*(x,y) + 1 coupler
    EXPECT_EQ(h.controls.back().label, "xx0_1");
}

TEST(Hamiltonian, ThreeQubitModelCouplerCount) {
    const auto h = make_block_hamiltonian(3);
    EXPECT_EQ(h.controls.size(), 9u); // 6 drives + 3 couplers
}

TEST(Hamiltonian, DriftIsHermitian) {
    const auto h = make_block_hamiltonian(3);
    EXPECT_LT(h.drift.max_abs_diff(h.drift.dagger()), 1e-12);
    for (const auto& c : h.controls)
        EXPECT_LT(c.h.max_abs_diff(c.h.dagger()), 1e-12);
}

TEST(Hamiltonian, RejectsNonPositive) {
    EXPECT_THROW(make_block_hamiltonian(0), std::invalid_argument);
}

TEST(Grape, ReachesXGate) {
    const auto h = make_block_hamiltonian(1);
    GrapeOptions opt;
    opt.target_fidelity = 0.999;
    const Pulse p = grape_optimize(h, epoc::circuit::pauli_x(), 8, opt);
    EXPECT_GE(p.fidelity, 0.999);
    // Cross-check: the claimed fidelity matches the realised propagator.
    const Matrix u = pulse_unitary(h, p);
    EXPECT_NEAR(epoc::linalg::hs_fidelity(u, epoc::circuit::pauli_x()), p.fidelity, 1e-6);
}

TEST(Grape, ReachesCnot) {
    const auto h = make_block_hamiltonian(2);
    GrapeOptions opt;
    opt.target_fidelity = 0.995;
    const Pulse p =
        grape_optimize(h, epoc::circuit::kind_matrix(GateKind::CX, {}), 24, opt);
    EXPECT_GE(p.fidelity, 0.995);
}

TEST(Grape, RespectsAmplitudeBounds) {
    const auto h = make_block_hamiltonian(2);
    const Pulse p =
        grape_optimize(h, epoc::circuit::kind_matrix(GateKind::CX, {}), 24, {});
    for (std::size_t j = 0; j < h.controls.size(); ++j)
        for (const double a : p.amplitudes[j])
            EXPECT_LE(std::abs(a), h.controls[j].bound + 1e-12);
}

TEST(Grape, TooFewSlotsCannotReachTarget) {
    const auto h = make_block_hamiltonian(1);
    // A pi rotation at bounded amplitude needs ~10ns; one 2ns slot cannot.
    const Pulse p = grape_optimize(h, epoc::circuit::pauli_x(), 1, {});
    EXPECT_LT(p.fidelity, 0.9);
}

TEST(Grape, WarmStartSpeedsConvergence) {
    const auto h = make_block_hamiltonian(1);
    GrapeOptions cold;
    cold.target_fidelity = 0.9999;
    const Pulse p1 = grape_optimize(h, epoc::circuit::hadamard(), 8, cold);
    GrapeOptions warm = cold;
    warm.warm_amplitudes = p1.amplitudes;
    const Pulse p2 = grape_optimize(h, epoc::circuit::hadamard(), 8, warm);
    EXPECT_LE(p2.grape_iterations, p1.grape_iterations);
    EXPECT_GE(p2.fidelity, p1.fidelity - 1e-6);
}

TEST(Grape, InvalidArgumentsThrow) {
    const auto h = make_block_hamiltonian(1);
    EXPECT_THROW(grape_optimize(h, Matrix::identity(4), 8, {}), std::invalid_argument);
    EXPECT_THROW(grape_optimize(h, Matrix::identity(2), 0, {}), std::invalid_argument);
}

TEST(LatencySearch, SxShorterThanX) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    const auto rx = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    const auto rsx =
        find_minimal_latency_pulse(h, epoc::circuit::kind_matrix(GateKind::SX, {}), opt);
    EXPECT_TRUE(rx.feasible);
    EXPECT_TRUE(rsx.feasible);
    EXPECT_LT(rsx.pulse.duration(), rx.pulse.duration());
}

TEST(LatencySearch, GroupedBlockBeatsSequentialGates) {
    // The paper's central physical claim (Fig. 7/8): one pulse for a block is
    // shorter than the concatenation of its per-gate pulses.
    const auto h2 = make_block_hamiltonian(2);
    const auto h1 = make_block_hamiltonian(1);
    LatencySearchOptions opt;

    Circuit block(2);
    block.h(0).cx(0, 1);
    const auto grouped =
        find_minimal_latency_pulse(h2, epoc::circuit::circuit_unitary(block), opt);
    const auto h_only = find_minimal_latency_pulse(h1, epoc::circuit::hadamard(), opt);
    const auto cx_only = find_minimal_latency_pulse(
        h2, epoc::circuit::kind_matrix(GateKind::CX, {}), opt);
    EXPECT_TRUE(grouped.feasible);
    EXPECT_LT(grouped.pulse.duration(),
              h_only.pulse.duration() + cx_only.pulse.duration());
}

TEST(LatencySearch, GranularityRoundsUp) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.slot_granularity = 4;
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.pulse.num_slots() % 4, 0);
}

TEST(LatencySearch, InfeasibleReported) {
    const auto h = make_block_hamiltonian(1);
    LatencySearchOptions opt;
    opt.max_slots = 1; // nothing nontrivial fits in 2ns
    const auto r = find_minimal_latency_pulse(h, epoc::circuit::pauli_x(), opt);
    EXPECT_FALSE(r.feasible);
}

TEST(PulseLibrary, CachesByUnitary) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions opt;
    const auto r1 = lib.get_or_generate(h, epoc::circuit::hadamard(), opt);
    const double d1 = r1->pulse.duration();
    const auto r2 = lib.get_or_generate(h, epoc::circuit::hadamard(), opt);
    EXPECT_EQ(lib.stats().hits, 1u);
    EXPECT_EQ(lib.stats().misses, 1u);
    EXPECT_EQ(r2->pulse.duration(), d1);
}

TEST(PulseLibrary, PhaseAwareHitsPhaseShiftedUnitary) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    LatencySearchOptions opt;
    const Matrix u = epoc::circuit::hadamard();
    lib.get_or_generate(h, u, opt);
    Matrix shifted = u;
    shifted *= std::polar(1.0, 1.234);
    lib.get_or_generate(h, shifted, opt);
    EXPECT_EQ(lib.stats().hits, 1u);
}

TEST(PulseLibrary, PhaseObliviousMisses) {
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(false); // AccQOC/PAQOC-style raw lookup
    LatencySearchOptions opt;
    const Matrix u = epoc::circuit::hadamard();
    lib.get_or_generate(h, u, opt);
    Matrix shifted = u;
    shifted *= std::polar(1.0, 1.234);
    lib.get_or_generate(h, shifted, opt);
    EXPECT_EQ(lib.stats().hits, 0u);
    EXPECT_EQ(lib.size(), 2u);
}

TEST(PulseLibrary, PeekDoesNotGenerate) {
    PulseLibrary lib(true);
    EXPECT_EQ(lib.peek(epoc::circuit::hadamard()), nullptr);
    EXPECT_EQ(lib.size(), 0u);
}

} // namespace
