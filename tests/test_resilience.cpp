// Resilient compilation: every rung of the degradation ladder, exercised
// deterministically through the fault-injection harness (util/fault_injection.h),
// plus the compile-deadline / cancel-token machinery and the boundary
// validation of compile(). The overarching contract under test: compile()
// never throws for per-block failures, always returns a structurally valid
// schedule, accounts for every block in EpocResult::block_reports, and — with
// zero faults and no deadline — stays bit-identical across thread counts.
#include "epoc/pipeline.h"

#include "bench_circuits/generators.h"
#include "qoc/grape.h"
#include "qoc/latency_search.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace {

using namespace epoc::core;
using epoc::circuit::Circuit;
namespace fault = epoc::util::fault;

/// Scoped arming: tests must never leak a fault config into each other.
struct FaultGuard {
    explicit FaultGuard(const std::string& spec) { fault::configure(spec); }
    ~FaultGuard() { fault::clear(); }
};

EpocOptions cheap_options(int num_threads = 1) {
    EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.num_threads = num_threads;
    return opt;
}

/// A degraded compile is still a usable artifact: complete schedule, sane
/// timings, in-range qubits, and an account of what went wrong.
void expect_valid_degraded(const EpocResult& r, const Circuit& c,
                           const std::string& what) {
    EXPECT_TRUE(r.degraded) << what;
    EXPECT_FALSE(r.status.ok()) << what;
    EXPECT_FALSE(r.block_reports.empty()) << what;
    EXPECT_GT(r.num_pulses, 0u) << what;
    EXPECT_GT(r.latency_ns, 0.0) << what;
    EXPECT_EQ(r.schedule.num_qubits, c.num_qubits()) << what;
    for (const ScheduledPulse& p : r.schedule.pulses) {
        EXPECT_GE(p.start, 0.0) << what;
        EXPECT_GE(p.end, p.start) << what;
        for (const int q : p.job.qubits) {
            EXPECT_GE(q, 0) << what;
            EXPECT_LT(q, c.num_qubits()) << what;
        }
    }
    bool any_fallback = false;
    for (const BlockReport& br : r.block_reports)
        any_fallback = any_fallback || !br.status.ok();
    EXPECT_TRUE(any_fallback) << what;
}

// ---------------------------------------------------------------------------
// Fault-injection harness unit tests.

TEST(FaultInjection, DisabledByDefaultAndAfterClear) {
    fault::clear();
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::maybe_fail("anything"));
    EXPECT_NO_THROW(fault::maybe_throw("anything"));
}

TEST(FaultInjection, AlwaysTriggerFiresEveryArrival) {
    const FaultGuard g("site.a=*");
    EXPECT_TRUE(fault::enabled());
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(fault::maybe_fail("site.a"));
    EXPECT_EQ(fault::arrivals("site.a"), 5u);
    EXPECT_EQ(fault::fired("site.a"), 5u);
}

TEST(FaultInjection, UnarmedSitesCountArrivalsButNeverFire) {
    const FaultGuard g("site.a=*");
    for (int i = 0; i < 3; ++i) EXPECT_FALSE(fault::maybe_fail("site.b"));
    EXPECT_EQ(fault::arrivals("site.b"), 3u);
    EXPECT_EQ(fault::fired("site.b"), 0u);
}

TEST(FaultInjection, NthArrivalTrigger) {
    const FaultGuard g("s=3");
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) fired.push_back(fault::maybe_fail("s"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
}

TEST(FaultInjection, FromNthArrivalTrigger) {
    const FaultGuard g("s=3+");
    std::vector<bool> fired;
    for (int i = 0; i < 5; ++i) fired.push_back(fault::maybe_fail("s"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
}

TEST(FaultInjection, SeededRateIsDeterministic) {
    std::vector<bool> first;
    {
        const FaultGuard g("s=%3@42");
        for (int i = 0; i < 64; ++i) first.push_back(fault::maybe_fail("s"));
    }
    std::vector<bool> second;
    {
        const FaultGuard g("s=%3@42");
        for (int i = 0; i < 64; ++i) second.push_back(fault::maybe_fail("s"));
    }
    EXPECT_EQ(first, second);
    // ~1/3 rate: not all-false, not all-true.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST(FaultInjection, MultipleSitesInOneSpec) {
    const FaultGuard g("a=*;b=2");
    EXPECT_TRUE(fault::maybe_fail("a"));
    EXPECT_FALSE(fault::maybe_fail("b"));
    EXPECT_TRUE(fault::maybe_fail("b"));
}

TEST(FaultInjection, MalformedSpecThrows) {
    fault::clear();
    EXPECT_THROW(fault::configure("oops"), std::invalid_argument);
    EXPECT_THROW(fault::configure("s=zzz"), std::invalid_argument);
    EXPECT_THROW(fault::configure("s=%0@1"), std::invalid_argument);
    EXPECT_FALSE(fault::enabled()); // a failed configure never half-arms
}

TEST(FaultInjection, MaybeThrowCarriesTheSiteName) {
    const FaultGuard g("boom.site=*");
    try {
        fault::maybe_throw("boom.site");
        FAIL() << "expected InjectedFault";
    } catch (const fault::InjectedFault& e) {
        EXPECT_EQ(e.site_name, "boom.site");
    }
}

TEST(FaultInjection, ConfigureFromEnv) {
    ::setenv("EPOC_FAULT_INJECT", "env.site=*", 1);
    fault::configure_from_env();
    EXPECT_TRUE(fault::maybe_fail("env.site"));
    fault::clear();
    ::unsetenv("EPOC_FAULT_INJECT");
}

// ---------------------------------------------------------------------------
// Deadline / cancel-token unit tests.

TEST(Deadline, UnarmedNeverExpires) {
    const epoc::util::Deadline d;
    EXPECT_FALSE(d.armed());
    EXPECT_FALSE(d.expired());
    EXPECT_FALSE(epoc::util::deadline_expired(nullptr));
    EXPECT_FALSE(epoc::util::deadline_expired(&d));
}

TEST(Deadline, ExpiresAfterItsBudget) {
    const epoc::util::Deadline d = epoc::util::Deadline::after_ms(1.0);
    EXPECT_TRUE(d.armed());
    while (!d.expired()) {
    } // a 1 ms spin; expired() must eventually flip and then stick
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST(Deadline, CancelTokenActsAsImmediateExpiry) {
    epoc::util::CancelToken token;
    epoc::util::Deadline d; // unarmed: would never expire on its own
    d.link(&token);
    EXPECT_FALSE(d.expired());
    token.cancel();
    EXPECT_TRUE(d.expired());
    token.reset();
    EXPECT_FALSE(token.cancelled());
}

TEST(Deadline, FiredTokenZeroesRemainingBudget) {
    // Regression: remaining_ms() used to ignore the linked token, so a
    // cancelled job kept reporting its full clock budget — an admission
    // controller keying on remaining_ms() would admit dead requests.
    epoc::util::CancelToken token;

    // Armed case: a generous clock budget must collapse to 0 on cancel.
    epoc::util::Deadline armed = epoc::util::Deadline::after_ms(60000.0);
    armed.link(&token);
    EXPECT_GT(armed.remaining_ms(), 0.0);
    token.cancel();
    EXPECT_EQ(armed.remaining_ms(), 0.0);

    // Unarmed case: no clock at all, only the token — 1e300 until it fires,
    // then 0.
    token.reset();
    epoc::util::Deadline unarmed;
    unarmed.link(&token);
    EXPECT_GE(unarmed.remaining_ms(), 1e300);
    token.cancel();
    EXPECT_EQ(unarmed.remaining_ms(), 0.0);
    token.reset();
}

// ---------------------------------------------------------------------------
// ThreadPool cooperative stop.

TEST(ThreadPool, CancelledTokenStopsClaimsBeforeAnyWork) {
    epoc::util::CancelToken token;
    token.cancel();
    std::atomic<int> ran{0};
    for (const int workers : {1, 4}) {
        epoc::util::ThreadPool pool(workers);
        pool.parallel_for(1000, [&](std::size_t) { ran.fetch_add(1); }, &token);
        EXPECT_EQ(ran.load(), 0) << workers << " workers";
        // The pool must stay usable for the next (uncancelled) batch.
        token.reset();
        pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 10) << workers << " workers";
        ran.store(0);
        token.cancel();
    }
}

TEST(ThreadPool, WorkersStopClaimingAfterAFailure) {
    // Once one index throws, remaining indices must not be claimed: each
    // worker (plus the caller draining inline) can execute at most the one
    // task it had already claimed.
    epoc::util::ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallel_for(10000,
                                   [&](std::size_t) {
                                       ran.fetch_add(1);
                                       throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    EXPECT_LE(ran.load(), 5);
    EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPool, MidBatchCancellationStopsEarly) {
    // Sequential fast path (1 worker): cancelling from inside the body is
    // fully deterministic — exactly index 0 runs.
    epoc::util::ThreadPool pool(1);
    epoc::util::CancelToken token;
    std::atomic<int> ran{0};
    pool.parallel_for(1000,
                      [&](std::size_t) {
                          ran.fetch_add(1);
                          token.cancel();
                      },
                      &token);
    EXPECT_EQ(ran.load(), 1);
}

// ---------------------------------------------------------------------------
// GRAPE non-finite handling.

TEST(Grape, ReseedsOnceOnTransientNonFiniteFidelity) {
    const FaultGuard g("grape.nonfinite=1"); // poison only the first iteration
    const epoc::qoc::BlockHamiltonian h = epoc::qoc::make_block_hamiltonian(1);
    epoc::linalg::Matrix x(2, 2);
    x(0, 1) = 1.0;
    x(1, 0) = 1.0;
    epoc::qoc::GrapeOptions opt;
    opt.max_iterations = 80;
    const epoc::qoc::Pulse p = epoc::qoc::grape_optimize(h, x, 12, opt);
    EXPECT_EQ(p.nonfinite_reseeds, 1);
    EXPECT_FALSE(p.nonfinite_aborted);
    EXPECT_TRUE(std::isfinite(p.fidelity));
    EXPECT_GT(p.fidelity, 0.5); // the reseeded run genuinely optimized
}

TEST(Grape, AbortsAfterExhaustingReseedBudget) {
    const FaultGuard g("grape.nonfinite=*"); // every iteration goes non-finite
    const epoc::qoc::BlockHamiltonian h = epoc::qoc::make_block_hamiltonian(1);
    epoc::linalg::Matrix x(2, 2);
    x(0, 1) = 1.0;
    x(1, 0) = 1.0;
    epoc::qoc::GrapeOptions opt;
    opt.max_iterations = 40;
    opt.nonfinite_retries = 2;
    const epoc::qoc::Pulse p = epoc::qoc::grape_optimize(h, x, 12, opt);
    EXPECT_TRUE(p.nonfinite_aborted);
    EXPECT_EQ(p.nonfinite_reseeds, 2);
    EXPECT_TRUE(std::isfinite(p.fidelity)); // best *finite* iterate is returned
}

// ---------------------------------------------------------------------------
// Pipeline-level ladder rungs (the acceptance scenarios).

TEST(Resilience, SynthesisFaultFallsBackToOriginalGates) {
    const FaultGuard g("synth.block=*");
    const Circuit c = epoc::bench::ghz(4);
    EpocCompiler compiler(cheap_options());
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "synth.block=*");
    EXPECT_EQ(r.status.cause, epoc::util::Cause::injected);
    // Every synthesis block fell back; the synthesized circuit is exactly the
    // (ZX-optimized, partitioned) original gates.
    std::size_t synth_reports = 0;
    for (const BlockReport& br : r.block_reports) {
        if (br.status.stage != epoc::util::Stage::synthesis) continue;
        ++synth_reports;
        EXPECT_EQ(br.status.cause, epoc::util::Cause::injected);
        EXPECT_TRUE(br.status.fallback_taken);
    }
    EXPECT_EQ(synth_reports, r.num_blocks);
}

TEST(Resilience, SynthesisCacheComputeFaultIsContained) {
    // The fault fires *inside* the single-flight compute lambda: the cache
    // must surface it to the leader without caching it or wedging waiters.
    const FaultGuard g("synth.compute=*");
    const Circuit c = epoc::bench::qft(3);
    for (const int threads : {1, 4}) {
        EpocCompiler compiler(cheap_options(threads));
        const EpocResult r = compiler.compile(c);
        expect_valid_degraded(r, c,
                              "synth.compute=* @" + std::to_string(threads));
        EXPECT_EQ(r.synth_cache_stats.hits, 0u); // failures are never cached
    }
}

TEST(Resilience, BlockPulseFaultFallsBackToGateByGatePulses) {
    const FaultGuard g("pulse.block=*");
    const Circuit c = epoc::bench::ghz(3);
    EpocOptions opt = cheap_options();
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "pulse.block=*");
    // The grouped arm degraded to per-gate pulses but stays schedulable;
    // whichever arm won, every grouped block is accounted for and marked.
    bool saw_grouped = false;
    for (const BlockReport& br : r.block_reports) {
        if (br.status.stage != epoc::util::Stage::pulse) continue;
        if (br.label.rfind("grouped block", 0) != 0) continue;
        saw_grouped = true;
        EXPECT_EQ(br.status.cause, epoc::util::Cause::injected) << br.label;
        EXPECT_TRUE(br.status.fallback_taken) << br.label;
    }
    EXPECT_TRUE(saw_grouped);
}

TEST(Resilience, GatePulseFaultShipsPlaceholderPulses) {
    const FaultGuard g("pulse.gate=*");
    const Circuit c = epoc::bench::ghz(3);
    // Disable the grouped arm: with only per-gate pulses faulted, the clean
    // grouped schedule would win the latency comparison and hide them.
    EpocOptions opt = cheap_options();
    opt.regroup_enabled = false;
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "pulse.gate=*");
    // Placeholders are impossible to mistake for good pulses.
    bool saw_placeholder = false;
    for (const ScheduledPulse& p : r.schedule.pulses)
        saw_placeholder = saw_placeholder || p.job.fidelity == 0.0;
    EXPECT_TRUE(saw_placeholder);
    EXPECT_EQ(r.esp, 0.0); // ESP is a product over pulse fidelities
}

TEST(Resilience, GrapeNonFiniteCascadesToFallbackNotThrow) {
    const FaultGuard g("grape.nonfinite=*");
    const Circuit c = epoc::bench::ghz(3);
    EpocOptions opt = cheap_options();
    opt.latency.grape.max_iterations = 20; // aborts are cheap but keep it snappy
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "grape.nonfinite=*");
    // Nothing built from aborted GRAPE runs may be cached as authoritative.
    EXPECT_GT(r.library_stats.uncached_degraded, 0u);
}

TEST(Resilience, InjectedInfeasibleLatencySearchTakesTheLadder) {
    const FaultGuard g("latency.infeasible=*");
    const Circuit c = epoc::bench::ghz(3);
    EpocCompiler compiler(cheap_options());
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "latency.infeasible=*");
}

TEST(Resilience, GenuinelyInfeasibleThresholdIsFlaggedNotFatal) {
    // No injection: an impossible fidelity bar with a starved slot budget.
    EpocOptions opt = cheap_options();
    opt.latency.fidelity_threshold = 0.999999999;
    opt.latency.max_slots = 2;
    opt.latency.grape.max_iterations = 15;
    const Circuit c = epoc::bench::ghz(3);
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "impossible threshold");
    EXPECT_EQ(r.status.cause, epoc::util::Cause::infeasible);
    // Deterministic infeasibility is cacheable: a second compile must not
    // redo the failed searches.
    const std::size_t misses_after_first = r.library_stats.misses;
    const EpocResult r2 = compiler.compile(c);
    EXPECT_EQ(r2.library_stats.misses, misses_after_first);
}

TEST(Resilience, ZxFaultKeepsTheOriginalCircuit) {
    const FaultGuard g("zx.fail=*");
    const Circuit c = epoc::bench::qft(3);
    EpocCompiler compiler(cheap_options());
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "zx.fail=*");
    EXPECT_EQ(r.depth_after_zx, r.depth_original);
    EXPECT_EQ(r.block_reports.front().status.stage, epoc::util::Stage::zx);
}

TEST(Resilience, EveryInjectionSiteStillYieldsAValidCompile) {
    // The acceptance sweep: force each site in turn on the fig8-style
    // benches; compile() must never leak an exception and must mark itself
    // degraded with every block accounted for.
    const std::vector<std::string> sites = {
        "zx.fail",     "partition.fail",    "regroup.fail", "synth.block",
        "synth.compute", "pulse.block",     "pulse.gate",   "grape.nonfinite",
        "latency.infeasible"};
    const Circuit c = epoc::bench::ghz(3);
    for (const std::string& site : sites) {
        const FaultGuard g(site + "=*");
        EpocOptions opt = cheap_options();
        opt.latency.grape.max_iterations = 30;
        EpocCompiler compiler(opt);
        EpocResult r;
        ASSERT_NO_THROW(r = compiler.compile(c)) << site;
        expect_valid_degraded(r, c, site + "=*");
    }
}

TEST(Resilience, BrokenPlanCacheDegradesToColdCompileNotThrow) {
    // The plan cache is an accelerator, never a dependency: a fault anywhere
    // on the plan path (lookup or instantiation) must silently drop the
    // compile onto the ordinary cold pipeline, whose output is clean — not
    // degraded, and certainly not an exception.
    for (const std::string site : {"plan.lookup", "plan.instantiate"}) {
        const FaultGuard g(site + "=*");
        EpocOptions opt = cheap_options();
        opt.plan_cache = true;
        opt.trace_enabled = true;
        EpocCompiler compiler(opt);
        Circuit c(2);
        c.h(0).h(1).rzz(0.5, 0, 1).rx(0.3, 0).rx(0.3, 1);
        EpocResult r;
        ASSERT_NO_THROW(r = compiler.compile(c)) << site;
        EXPECT_FALSE(r.plan_hit) << site;
        EXPECT_GT(r.num_pulses, 0u) << site;
        EXPECT_GT(r.latency_ns, 0.0) << site;
        EXPECT_FALSE(r.degraded) << site; // the cold path saw no fault
        EXPECT_GT(r.trace.counter("robust.plan_fallbacks"), 0u) << site;
        // The site fires on every arrival, so later compiles keep falling
        // back — and keep succeeding.
        ASSERT_NO_THROW(r = compiler.compile(c)) << site;
        EXPECT_FALSE(r.plan_hit) << site;
        EXPECT_GT(r.num_pulses, 0u) << site;
    }
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation at the compile() level.

TEST(Resilience, TightDeadlineDegradesButStaysValid) {
    EpocOptions opt = cheap_options();
    opt.deadline_ms = 0.001; // expires essentially immediately
    const Circuit c = epoc::bench::qft(3);
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "deadline 1us");
    EXPECT_TRUE(r.deadline_hit);
    EXPECT_EQ(r.status.cause, epoc::util::Cause::timeout);
}

TEST(Resilience, DegradedResultsAreNotServedFromCacheLater) {
    // A compile starved by its deadline must not poison the library: with the
    // deadline lifted, the same compiler re-attempts and matches a compiler
    // that never had a deadline at all.
    const Circuit c = epoc::bench::ghz(3);
    EpocOptions opt = cheap_options();
    opt.deadline_ms = 0.001;
    EpocCompiler compiler(opt);
    const EpocResult starved = compiler.compile(c);
    EXPECT_TRUE(starved.degraded);
    EXPECT_GT(starved.library_stats.uncached_degraded, 0u);

    compiler.set_deadline_ms(0.0);
    const EpocResult retry = compiler.compile(c);
    EXPECT_FALSE(retry.degraded) << retry.status.to_string();

    EpocCompiler fresh(cheap_options());
    const EpocResult clean = fresh.compile(c);
    EXPECT_EQ(retry.latency_ns, clean.latency_ns);
    EXPECT_EQ(retry.esp, clean.esp);
    EXPECT_EQ(retry.num_pulses, clean.num_pulses);
}

TEST(Resilience, PreCancelledTokenYieldsCancelledResult) {
    epoc::util::CancelToken token;
    token.cancel();
    EpocOptions opt = cheap_options();
    opt.cancel = &token;
    const Circuit c = epoc::bench::ghz(3);
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(c);
    expect_valid_degraded(r, c, "pre-cancelled token");
    EXPECT_TRUE(r.deadline_hit);
    EXPECT_EQ(r.status.cause, epoc::util::Cause::cancelled);
}

// ---------------------------------------------------------------------------
// Boundary validation.

TEST(Resilience, EmptyCircuitCompilesToEmptySchedule) {
    EpocCompiler compiler(cheap_options());
    const EpocResult r = compiler.compile(Circuit(3));
    EXPECT_TRUE(r.status.ok());
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.num_pulses, 0u);
    EXPECT_EQ(r.latency_ns, 0.0);
    EXPECT_EQ(r.schedule.num_qubits, 3);
}

TEST(Resilience, NegativeQubitCountIsRejectedStructurally) {
    EpocCompiler compiler(cheap_options());
    EpocResult r;
    ASSERT_NO_THROW(r = compiler.compile(Circuit(-2)));
    EXPECT_EQ(r.status.cause, epoc::util::Cause::invalid_input);
    EXPECT_EQ(r.status.stage, epoc::util::Stage::input);
    EXPECT_EQ(r.num_pulses, 0u);
    EXPECT_EQ(r.schedule.num_qubits, 0);
}

TEST(Resilience, ZeroQubitEmptyCircuitIsFine) {
    EpocCompiler compiler(cheap_options());
    const EpocResult r = compiler.compile(Circuit(0));
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.num_pulses, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the resilience layer must be invisible on the clean path.

TEST(Resilience, CleanPathStaysBitIdenticalAcrossThreadCounts) {
    fault::clear(); // belt and braces: zero faults, no deadline
    for (const auto& [name, circuit] :
         std::vector<std::pair<std::string, Circuit>>{
             {"ghz4", epoc::bench::ghz(4)}, {"qft3", epoc::bench::qft(3)}}) {
        EpocCompiler sequential(cheap_options(1));
        const EpocResult seq = sequential.compile(circuit);
        EXPECT_FALSE(seq.degraded) << name;
        EXPECT_TRUE(seq.status.ok()) << name;
        for (const int threads : {2, 8}) {
            EpocCompiler parallel(cheap_options(threads));
            const EpocResult par = parallel.compile(circuit);
            const std::string what = name + " @" + std::to_string(threads);
            EXPECT_FALSE(par.degraded) << what;
            EXPECT_EQ(seq.latency_ns, par.latency_ns) << what;
            EXPECT_EQ(seq.esp, par.esp) << what;
            EXPECT_EQ(seq.esp_decoherent, par.esp_decoherent) << what;
            ASSERT_EQ(seq.schedule.pulses.size(), par.schedule.pulses.size()) << what;
            for (std::size_t i = 0; i < seq.schedule.pulses.size(); ++i) {
                const ScheduledPulse& a = seq.schedule.pulses[i];
                const ScheduledPulse& b = par.schedule.pulses[i];
                EXPECT_EQ(a.job.qubits, b.job.qubits) << what << " pulse " << i;
                EXPECT_EQ(a.start, b.start) << what << " pulse " << i;
                EXPECT_EQ(a.end, b.end) << what << " pulse " << i;
                EXPECT_EQ(a.job.fidelity, b.job.fidelity) << what << " pulse " << i;
                EXPECT_EQ(a.job.label, b.job.label) << what << " pulse " << i;
            }
            // Block reports are merged in block order: deterministic too.
            ASSERT_EQ(seq.block_reports.size(), par.block_reports.size()) << what;
            for (std::size_t i = 0; i < seq.block_reports.size(); ++i) {
                EXPECT_EQ(seq.block_reports[i].label, par.block_reports[i].label)
                    << what << " report " << i;
            }
        }
    }
}

TEST(Resilience, InjectedDegradationIsDeterministicAcrossRuns) {
    // Same spec, same circuit, same thread count => same degraded artifact.
    const Circuit c = epoc::bench::ghz(3);
    auto run = [&] {
        const FaultGuard g("pulse.block=*");
        EpocCompiler compiler(cheap_options(1));
        return compiler.compile(c);
    };
    const EpocResult a = run();
    const EpocResult b = run();
    EXPECT_EQ(a.latency_ns, b.latency_ns);
    EXPECT_EQ(a.esp, b.esp);
    EXPECT_EQ(a.num_pulses, b.num_pulses);
}

TEST(Resilience, RobustCountersAppearInTrace) {
    const FaultGuard g("synth.block=*");
    EpocOptions opt = cheap_options();
    opt.trace_enabled = true;
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(epoc::bench::ghz(3));
    EXPECT_TRUE(r.degraded);
    EXPECT_GT(r.trace.counter("robust.injected_faults"), 0u);
    EXPECT_GT(r.trace.counter("robust.synth_fallbacks"), 0u);
    EXPECT_EQ(r.trace.counter("robust.degraded_compiles"), 1u);
}

} // namespace
