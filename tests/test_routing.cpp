#include "circuit/routing.h"

#include "bench_circuits/random_circuits.h"
#include "circuit/unitary.h"
#include "linalg/phase.h"

#include <gtest/gtest.h>

namespace {

using namespace epoc::circuit;
using epoc::linalg::equal_up_to_global_phase;

TEST(CouplingMap, LinearDistances) {
    const CouplingMap m = CouplingMap::linear(5);
    EXPECT_EQ(m.distance(0, 4), 4);
    EXPECT_EQ(m.distance(2, 2), 0);
    EXPECT_TRUE(m.adjacent(1, 2));
    EXPECT_FALSE(m.adjacent(0, 2));
}

TEST(CouplingMap, RingWrapsAround) {
    const CouplingMap m = CouplingMap::ring(6);
    EXPECT_EQ(m.distance(0, 5), 1);
    EXPECT_EQ(m.distance(0, 3), 3);
}

TEST(CouplingMap, GridDistances) {
    const CouplingMap m = CouplingMap::grid(2, 3);
    EXPECT_EQ(m.num_qubits(), 6);
    EXPECT_EQ(m.distance(0, 5), 3); // (0,0) -> (1,2)
}

TEST(CouplingMap, NextHopMakesProgress) {
    const CouplingMap m = CouplingMap::linear(6);
    int at = 0;
    int hops = 0;
    while (!m.adjacent(at, 5) && hops < 10) {
        at = m.next_hop(at, 5);
        ++hops;
    }
    EXPECT_EQ(at, 4);
}

TEST(CouplingMap, BadEdgeThrows) {
    EXPECT_THROW(CouplingMap(2, {{0, 2}}), std::invalid_argument);
    EXPECT_THROW(CouplingMap(2, {{1, 1}}), std::invalid_argument);
}

// Each malformed-constructor case must fail with its own diagnostic — a
// calibration file with a duplicate edge should not be reported as
// "out of range".
TEST(CouplingMap, CtorRejectionsAreDistinct) {
    const auto message_of = [](int n, std::vector<std::pair<int, int>> edges) {
        try {
            CouplingMap m(n, std::move(edges));
        } catch (const std::invalid_argument& e) {
            return std::string(e.what());
        }
        return std::string();
    };
    EXPECT_NE(message_of(3, {{0, 3}}).find("out of range"), std::string::npos);
    EXPECT_NE(message_of(3, {{0, -1}}).find("out of range"), std::string::npos);
    EXPECT_NE(message_of(3, {{2, 2}}).find("self-loop"), std::string::npos);
    EXPECT_NE(message_of(3, {{0, 1}, {1, 0}}).find("duplicate"),
              std::string::npos);
    EXPECT_NE(message_of(3, {{0, 1}, {0, 1}}).find("duplicate"),
              std::string::npos);
}

TEST(CouplingMap, BuiltinTopologyShapes) {
    EXPECT_EQ(CouplingMap::ring(8).edges().size(), 8u);
    EXPECT_EQ(CouplingMap::grid(3, 3).edges().size(), 12u); // 2*3 rows + 3*2 cols
    EXPECT_EQ(CouplingMap::full(5).edges().size(), 10u);    // C(5,2)

    const CouplingMap hh = CouplingMap::heavy_hex7();
    EXPECT_EQ(hh.num_qubits(), 7);
    EXPECT_EQ(hh.edges().size(), 6u); // a tree: 7 nodes, 6 couplers
    EXPECT_TRUE(hh.adjacent(1, 3));
    EXPECT_FALSE(hh.adjacent(0, 6));
    EXPECT_EQ(hh.distance(0, 6), 4); // 0-1-3-5-6
    EXPECT_EQ(hh.distance(2, 4), 4); // 2-1-3-5-4

    // Grid distance is Manhattan; ring distance wraps.
    EXPECT_EQ(CouplingMap::grid(3, 3).distance(0, 8), 4);
    EXPECT_EQ(CouplingMap::ring(8).distance(0, 5), 3);
}

TEST(CouplingMap, ConnectedSubset) {
    const CouplingMap hh = CouplingMap::heavy_hex7();
    EXPECT_TRUE(hh.connected_subset({0}));
    EXPECT_TRUE(hh.connected_subset({0, 1, 2}));
    EXPECT_TRUE(hh.connected_subset({1, 3, 5, 6}));
    EXPECT_FALSE(hh.connected_subset({0, 2})); // both hang off qubit 1
    EXPECT_FALSE(hh.connected_subset({0, 5}));

    const CouplingMap ring = CouplingMap::ring(6);
    EXPECT_TRUE(ring.connected_subset({5, 0, 1})); // wraps through the seam
    EXPECT_FALSE(ring.connected_subset({0, 2, 4}));
}

TEST(Routing, AdjacentGatesNeedNoSwaps) {
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    const RoutingResult r = route(c, CouplingMap::linear(3));
    EXPECT_EQ(r.swaps_inserted, 0);
    EXPECT_EQ(r.circuit.size(), c.size());
}

TEST(Routing, DistantGateInsertsSwaps) {
    Circuit c(4);
    c.cx(0, 3);
    const RoutingResult r = route(c, CouplingMap::linear(4));
    EXPECT_EQ(r.swaps_inserted, 2);
    // Every emitted gate must respect the coupling map.
    const CouplingMap m = CouplingMap::linear(4);
    for (const Gate& g : r.circuit.gates()) {
        if (g.arity() == 2) {
            EXPECT_TRUE(m.adjacent(g.qubits[0], g.qubits[1]));
        }
    }
}

TEST(Routing, RejectsWideGates) {
    Circuit c(3);
    c.ccx(0, 1, 2);
    EXPECT_THROW(route(c, CouplingMap::linear(3)), std::invalid_argument);
}

TEST(Routing, RejectsOversizedCircuit) {
    Circuit c(5);
    c.h(0);
    EXPECT_THROW(route(c, CouplingMap::linear(3)), std::invalid_argument);
}

void expect_routing_equivalence(const Circuit& c, const CouplingMap& map) {
    const RoutingResult r = route(c, map);
    Circuit full = r.circuit;
    full.append(restore_layout_circuit(r.final_layout));
    // Compare against the original extended to the device width.
    Circuit original(map.num_qubits());
    std::vector<int> identity;
    for (int q = 0; q < c.num_qubits(); ++q) identity.push_back(q);
    original.append_mapped(c, identity);
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(full), circuit_unitary(original),
                                         1e-7));
}

TEST(Routing, UnitaryPreservedOnLinear) {
    Circuit c(4);
    c.h(0).cx(0, 3).t(3).cx(1, 2).cx(0, 2).s(1).cx(3, 1);
    expect_routing_equivalence(c, CouplingMap::linear(4));
}

TEST(Routing, UnitaryPreservedOnRing) {
    Circuit c(5);
    c.h(0).cx(0, 2).cx(4, 1).rz(0.4, 2).cx(2, 4).cx(1, 3);
    expect_routing_equivalence(c, CouplingMap::ring(5));
}

class RoutingRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingRandom, UnitaryPreserved) {
    epoc::bench::RandomCircuitSpec spec;
    spec.seed = GetParam();
    spec.num_qubits = 4;
    spec.num_gates = 20;
    const Circuit c = epoc::bench::random_circuit(spec);
    expect_routing_equivalence(c, CouplingMap::linear(4));
    expect_routing_equivalence(c, CouplingMap::grid(2, 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingRandom,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{10}));

TEST(Routing, FullConnectivityNeverSwaps) {
    epoc::bench::RandomCircuitSpec spec;
    spec.num_qubits = 5;
    spec.num_gates = 40;
    const Circuit c = epoc::bench::random_circuit(spec);
    EXPECT_EQ(route(c, CouplingMap::full(5)).swaps_inserted, 0);
}

TEST(Routing, RestoreLayoutHandlesBlankSlots) {
    // Logical 0 parked at physical 2 of a 3-qubit device.
    const Circuit c = restore_layout_circuit({2});
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).kind, GateKind::SWAP);
}

} // namespace
