#include "epoc/scheduler.h"

#include <gtest/gtest.h>

namespace {

using namespace epoc::core;

TEST(Scheduler, EmptySchedule) {
    const PulseSchedule s = schedule_asap({}, 3);
    EXPECT_EQ(s.latency, 0.0);
    EXPECT_EQ(s.esp, 1.0);
}

TEST(Scheduler, SerialOnSameQubit) {
    const PulseSchedule s = schedule_asap(
        {{{0}, 10.0, 1.0, "a"}, {{0}, 20.0, 1.0, "b"}}, 1);
    EXPECT_EQ(s.latency, 30.0);
    EXPECT_EQ(s.pulses[1].start, 10.0);
}

TEST(Scheduler, ParallelOnDisjointQubits) {
    const PulseSchedule s = schedule_asap(
        {{{0}, 10.0, 1.0, "a"}, {{1}, 25.0, 1.0, "b"}}, 2);
    EXPECT_EQ(s.latency, 25.0);
    EXPECT_EQ(s.pulses[1].start, 0.0);
}

TEST(Scheduler, TwoQubitPulseBlocksBothLines) {
    const PulseSchedule s = schedule_asap(
        {{{0, 1}, 40.0, 1.0, "cx"}, {{1}, 10.0, 1.0, "x"}, {{0}, 10.0, 1.0, "x"}}, 2);
    EXPECT_EQ(s.pulses[1].start, 40.0);
    EXPECT_EQ(s.pulses[2].start, 40.0);
    EXPECT_EQ(s.latency, 50.0);
}

TEST(Scheduler, ZeroDurationVirtualGate) {
    const PulseSchedule s = schedule_asap(
        {{{0}, 0.0, 1.0, "rz"}, {{0}, 10.0, 1.0, "sx"}}, 1);
    EXPECT_EQ(s.latency, 10.0);
}

TEST(Scheduler, EspIsProductOfFidelities) {
    const PulseSchedule s = schedule_asap(
        {{{0}, 10.0, 0.99, "a"}, {{1}, 10.0, 0.98, "b"}}, 2);
    EXPECT_NEAR(s.esp, 0.99 * 0.98, 1e-12);
}

TEST(Scheduler, UtilizationFullWhenPacked) {
    const PulseSchedule s = schedule_asap(
        {{{0}, 10.0, 1.0, "a"}, {{1}, 10.0, 1.0, "b"}}, 2);
    EXPECT_NEAR(s.utilization(), 1.0, 1e-12);
}

TEST(Scheduler, UtilizationHalfWhenSerialized) {
    const PulseSchedule s = schedule_asap(
        {{{0}, 10.0, 1.0, "a"}, {{0}, 10.0, 1.0, "b"}}, 2);
    EXPECT_NEAR(s.utilization(), 0.5, 1e-12);
}

// Regression: schedule_asap used to throw std::out_of_range here, escaping
// compile()'s never-throws contract from deep inside the pipeline. It now
// drops the unplaceable job, records it, and schedules everything else.
TEST(Scheduler, OutOfRangeQubitDroppedNotThrown) {
    PulseSchedule s;
    EXPECT_NO_THROW(s = schedule_asap({{{5}, 1.0, 1.0, "bad"},
                                       {{0}, 10.0, 0.5, "good"}},
                                      2));
    EXPECT_EQ(s.dropped_jobs, 1u);
    EXPECT_NE(s.drop_detail.find("job 0"), std::string::npos);
    EXPECT_NE(s.drop_detail.find("bad"), std::string::npos);
    // The schedulable job still ships, and the dropped one contributes to
    // neither latency nor ESP.
    ASSERT_EQ(s.pulses.size(), 1u);
    EXPECT_EQ(s.pulses[0].job.label, "good");
    EXPECT_EQ(s.latency, 10.0);
    EXPECT_NEAR(s.esp, 0.5, 1e-12);
}

TEST(Scheduler, NegativeQubitDropped) {
    const PulseSchedule s = schedule_asap({{{-1}, 1.0, 1.0, "neg"}}, 2);
    EXPECT_EQ(s.dropped_jobs, 1u);
    EXPECT_TRUE(s.pulses.empty());
    EXPECT_EQ(s.latency, 0.0);
}

} // namespace
