// Compile-service tests: wire protocol codec, admission control + fair
// queueing, and the epocd daemon end to end over a real AF_UNIX socket
// (daemon and clients in one process, which is also what makes this suite
// meaningful under TSan).
#include "service/daemon.h"

#include "backend/backend.h"
#include "bench_circuits/generators.h"
#include "circuit/qasm.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"
#include "service/admission.h"
#include "service/client.h"
#include "service/protocol.h"
#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace {

using namespace epoc;
using namespace epoc::service;

// ---------------------------------------------------------------- protocol

TEST(Protocol, JobRequestRoundTrips) {
    JobRequest req;
    req.id = 0xdeadbeefcafe01ULL;
    req.tenant = "alice";
    req.priority = -3; // negative priorities are legal (background work)
    req.deadline_ms = 1234.5678;
    req.qasm = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n";
    req.backend = "heavy-hex-7";
    const auto back = decode_job_request(encode_job_request(req));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->id, req.id);
    EXPECT_EQ(back->tenant, req.tenant);
    EXPECT_EQ(back->priority, req.priority);
    EXPECT_EQ(back->deadline_ms, req.deadline_ms);
    EXPECT_EQ(back->qasm, req.qasm);
    EXPECT_EQ(back->backend, req.backend);
}

TEST(Protocol, JobResponseRoundTrips) {
    JobResponse resp;
    resp.id = 77;
    resp.status = JobStatus::shed_deadline;
    resp.degraded = true;
    resp.deadline_hit = true;
    resp.plan_hit = false;
    resp.digest = 0x0123456789abcdefULL;
    resp.latency_ns = 1.0e9 / 3.0; // a double that decimal formatting mangles
    resp.esp = 0.987654321;
    resp.compile_ms = 45.5;
    resp.num_pulses = 12;
    resp.blocks_total = 5;
    resp.blocks_degraded = 2;
    resp.detail = "budget exhausted while queued";
    const auto back = decode_job_response(encode_job_response(resp));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->status, resp.status);
    EXPECT_TRUE(back->degraded);
    EXPECT_TRUE(back->deadline_hit);
    EXPECT_FALSE(back->plan_hit);
    EXPECT_EQ(back->digest, resp.digest);
    EXPECT_EQ(back->latency_ns, resp.latency_ns); // bit-exact, not approximate
    EXPECT_EQ(back->esp, resp.esp);
    EXPECT_EQ(back->detail, resp.detail);
}

TEST(Protocol, StatusResponseRoundTrips) {
    StatusResponse s;
    s.counters = {{"service.connections", 3},
                  {"service.tenant.alice.completed", 41},
                  {"qoc.library_misses", 16}};
    const auto back = decode_status_response(encode_status_response(s));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->counters.size(), 3u);
    EXPECT_EQ(back->counters[1].first, "service.tenant.alice.completed");
    EXPECT_EQ(back->counters[1].second, 41u);
}

TEST(Protocol, EveryTruncationIsRejected) {
    JobResponse resp;
    resp.id = 1;
    resp.status = JobStatus::ok;
    resp.detail = "fine";
    const std::string full = encode_job_response(resp);
    for (std::size_t n = 0; n < full.size(); ++n)
        EXPECT_FALSE(decode_job_response(full.substr(0, n)).has_value()) << n;
    EXPECT_TRUE(decode_job_response(full).has_value());
}

TEST(Protocol, LyingLengthFieldsAreRejected) {
    JobRequest req;
    req.id = 1;
    req.tenant = "t";
    req.qasm = "x";
    std::string bytes = encode_job_request(req);
    // The tenant length field sits right after type(1) + id(8): patch it to
    // promise far more bytes than the frame holds.
    bytes[9] = '\xff';
    bytes[10] = '\xff';
    EXPECT_FALSE(decode_job_request(bytes).has_value());
    // Wrong type byte on an otherwise valid frame.
    std::string retyped = encode_job_request(req);
    retyped[0] = static_cast<char>(MsgType::status_request);
    EXPECT_FALSE(decode_job_request(retyped).has_value());
}

// --------------------------------------------------------------- admission

Job make_job(const std::string& tenant, std::int32_t priority,
             double deadline_ms = 0.0) {
    Job j;
    static std::uint64_t next_id = 1;
    j.request.id = next_id++;
    j.request.tenant = tenant;
    j.request.priority = priority;
    j.request.deadline_ms = deadline_ms;
    j.cancel = std::make_shared<util::CancelToken>();
    if (deadline_ms > 0.0) j.deadline = util::Deadline::after_ms(deadline_ms);
    j.deadline.link(j.cancel.get());
    j.respond = [](const JobResponse&) {};
    return j;
}

TEST(Admission, TenantsRoundRobinWithinAPriorityLevel) {
    // A burst tenant (4 jobs) and a singleton tenant (2 jobs) at one level:
    // service must alternate, not drain the burst first.
    AdmissionController ac;
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(ac.submit(make_job("burst", 0)), Verdict::admitted);
    for (int i = 0; i < 2; ++i)
        ASSERT_EQ(ac.submit(make_job("single", 0)), Verdict::admitted);
    std::vector<std::string> order;
    Job j;
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(ac.next(j));
        order.push_back(j.request.tenant);
        ac.finish(j, JobResponse{});
    }
    const std::vector<std::string> want = {"burst", "single", "burst",
                                           "single", "burst", "burst"};
    EXPECT_EQ(order, want);
}

TEST(Admission, HigherPriorityLevelsDrainFirst) {
    AdmissionController ac;
    ASSERT_EQ(ac.submit(make_job("t", 0)), Verdict::admitted);
    ASSERT_EQ(ac.submit(make_job("t", 5)), Verdict::admitted);
    ASSERT_EQ(ac.submit(make_job("t", -1)), Verdict::admitted);
    ASSERT_EQ(ac.submit(make_job("t", 5)), Verdict::admitted);
    std::vector<std::int32_t> order;
    Job j;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ac.next(j));
        order.push_back(j.request.priority);
        ac.finish(j, JobResponse{});
    }
    const std::vector<std::int32_t> want = {5, 5, 0, -1};
    EXPECT_EQ(order, want);
}

TEST(Admission, RejectsBeyondCapacity) {
    AdmissionOptions opt;
    opt.max_pending = 2;
    AdmissionController ac(opt);
    EXPECT_EQ(ac.submit(make_job("t", 0)), Verdict::admitted);
    EXPECT_EQ(ac.submit(make_job("t", 0)), Verdict::admitted);
    EXPECT_EQ(ac.submit(make_job("t", 0)), Verdict::rejected_overload);
    // Capacity covers in-flight too: taking a job frees nothing until
    // finish().
    Job j;
    ASSERT_TRUE(ac.next(j));
    EXPECT_EQ(ac.submit(make_job("t", 0)), Verdict::rejected_overload);
    ac.finish(j, JobResponse{});
    EXPECT_EQ(ac.submit(make_job("t", 0)), Verdict::admitted);
    const AdmissionSnapshot s = ac.snapshot();
    EXPECT_EQ(s.tenants.at("t").rejected_overload, 2u);
    EXPECT_EQ(s.peak_pending, 2u);
}

TEST(Admission, ShedsInfeasibleDeadlinesAtTheDoor) {
    AdmissionController ac;
    // Budget already (effectively) spent on arrival.
    Job spent = make_job("t", 0, 0.0001);
    while (!spent.deadline.expired()) {
    }
    EXPECT_EQ(ac.submit(std::move(spent)), Verdict::shed_deadline);
    // A fired cancel token zeroes the budget even with a generous clock —
    // the satellite-2 remaining_ms() fix is what this relies on.
    Job dead = make_job("t", 0, 60000.0);
    dead.cancel->cancel();
    EXPECT_EQ(ac.submit(std::move(dead)), Verdict::shed_deadline);
    // Deadline-free jobs always pass the feasibility gate.
    EXPECT_EQ(ac.submit(make_job("t", 0)), Verdict::admitted);
    EXPECT_EQ(ac.snapshot().tenants.at("t").shed_deadline, 2u);
}

TEST(Admission, CloseDrainsQueuedJobsThenStops) {
    AdmissionController ac;
    ASSERT_EQ(ac.submit(make_job("t", 0)), Verdict::admitted);
    ASSERT_EQ(ac.submit(make_job("t", 0)), Verdict::admitted);
    ac.close();
    EXPECT_EQ(ac.submit(make_job("t", 0)), Verdict::closed);
    Job j;
    EXPECT_TRUE(ac.next(j));
    ac.finish(j, JobResponse{});
    EXPECT_TRUE(ac.next(j));
    ac.finish(j, JobResponse{});
    EXPECT_FALSE(ac.next(j)); // drained + closed: executors exit here
}

// ------------------------------------------------------------------ daemon

core::EpocOptions cheap_options() {
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.num_threads = 2;
    return opt;
}

std::string test_socket_path() {
    static std::atomic<int> counter{0};
    return "/tmp/epoc_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

std::uint64_t local_digest(core::EpocCompiler& c, const std::string& qasm) {
    return qoc::fnv1a64(
        core::schedule_to_json(c.compile(circuit::parse_qasm(qasm)).schedule));
}

std::uint64_t counter_value(const StatusResponse& s, const std::string& key) {
    for (const auto& [k, v] : s.counters)
        if (k == key) return v;
    return 0;
}

TEST(Daemon, CompileMatchesLibraryModeAndAnswersEveryRequest) {
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 2;
    opt.compiler = cheap_options();
    EpocDaemon daemon(opt);
    daemon.start();

    const std::string qasm = circuit::to_qasm(bench::ghz(3));
    core::EpocCompiler local(cheap_options());
    const std::uint64_t want = local_digest(local, qasm);

    EpocClient client(opt.socket_path);
    const JobResponse ok = client.compile(qasm, "alice");
    EXPECT_EQ(ok.status, JobStatus::ok);
    EXPECT_FALSE(ok.degraded);
    EXPECT_EQ(ok.digest, want);
    EXPECT_GT(ok.num_pulses, 0u);

    // Malformed QASM: a structured invalid_input response, not a dropped
    // connection or an exception.
    const JobResponse bad = client.compile("OPENQASM 2.0;\nbogus q[0];", "alice");
    EXPECT_EQ(bad.status, JobStatus::invalid_input);
    EXPECT_FALSE(bad.detail.empty());

    // A job whose budget is spent on arrival is shed, also as a response.
    const JobResponse shed = client.compile(qasm, "alice", 0, 0.0001);
    EXPECT_EQ(shed.status, JobStatus::shed_deadline);

    const StatusResponse status = client.status();
    EXPECT_EQ(counter_value(status, "service.tenant.alice.submitted"), 3u);
    EXPECT_EQ(counter_value(status, "service.tenant.alice.completed"), 1u);
    EXPECT_EQ(counter_value(status, "service.tenant.alice.shed_deadline"), 1u);
    EXPECT_EQ(counter_value(status, "service.tenant.alice.failed"), 1u);
    EXPECT_EQ(counter_value(status, "service.connections"), 1u);

    client.shutdown_server();
    daemon.wait(); // returns because the client requested shutdown
    daemon.stop();
}

TEST(Daemon, BackendJobsResolveAtAdmission) {
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 1;
    opt.compiler = cheap_options();
    EpocDaemon daemon(opt);
    daemon.start();

    EpocClient client(opt.socket_path);
    const std::string qasm = circuit::to_qasm(bench::ghz(3));

    // A known backend compiles and matches a local backend-aware compile
    // bit for bit.
    core::EpocOptions lopt = cheap_options();
    lopt.backend = epoc::backend::BackendRegistry().find("linear-5");
    core::EpocCompiler local(lopt);
    const std::uint64_t want = local_digest(local, qasm);
    const JobResponse ok = client.compile(qasm, "alice", 0, 0.0, "linear-5");
    EXPECT_EQ(ok.status, JobStatus::ok);
    EXPECT_EQ(ok.digest, want);

    // An unknown backend name is answered invalid_input at admission — a
    // structured response naming the backend, never a drop or an executor
    // burn.
    const JobResponse bad =
        client.compile(qasm, "alice", 0, 0.0, "no-such-device");
    EXPECT_EQ(bad.status, JobStatus::invalid_input);
    EXPECT_NE(bad.detail.find("unknown backend"), std::string::npos)
        << bad.detail;
    EXPECT_NE(bad.detail.find("no-such-device"), std::string::npos);

    const StatusResponse status = client.status();
    EXPECT_EQ(counter_value(status, "service.invalid_backend"), 1u);
    EXPECT_EQ(counter_value(status, "service.tenant.alice.failed"), 1u);

    client.shutdown_server();
    daemon.wait();
    daemon.stop();
}

TEST(Daemon, ConcurrentClientsDedupeSharedBlocks) {
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 3;
    opt.compiler = cheap_options();
    EpocDaemon daemon(opt);
    daemon.start();

    const std::vector<std::string> circuits = {
        circuit::to_qasm(bench::ghz(3)), circuit::to_qasm(bench::qft(3))};
    core::EpocCompiler local(cheap_options());
    std::vector<std::uint64_t> want;
    for (const std::string& qasm : circuits)
        want.push_back(local_digest(local, qasm));
    const std::size_t unique_misses = local.library().stats().misses;

    constexpr int kClients = 3;
    constexpr int kRounds = 2;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            try {
                EpocClient client(opt.socket_path);
                // Pipelined: submit everything, then collect by id.
                std::vector<std::pair<std::uint64_t, std::size_t>> ids;
                for (int round = 0; round < kRounds; ++round)
                    for (std::size_t i = 0; i < circuits.size(); ++i)
                        ids.emplace_back(
                            client.submit(circuits[i], "tenant" + std::to_string(t),
                                          static_cast<std::int32_t>(i % 2)),
                            i);
                for (const auto& [id, i] : ids) {
                    const JobResponse resp = client.wait_for(id);
                    if (resp.status != JobStatus::ok || resp.degraded ||
                        resp.digest != want[i])
                        failures.fetch_add(1);
                }
            } catch (...) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);

    // Cross-client dedup: however the 3 clients' 12 jobs interleaved, the
    // shared library generated each unique block exactly once (single-flight
    // makes the miss count deterministic), and the repeats all hit.
    EpocClient probe(opt.socket_path);
    const StatusResponse status = probe.status();
    EXPECT_EQ(counter_value(status, "qoc.library_misses"), unique_misses);
    EXPECT_GT(counter_value(status, "qoc.library_hits"), 0u);

    daemon.stop();
}

// Every test that arms fault sites must disarm them however it exits — the
// harness is process-global and the next test inherits whatever is left on.
struct FaultGuard {
    explicit FaultGuard(const std::string& spec) { util::fault::configure(spec); }
    ~FaultGuard() { util::fault::clear(); }
};

// ---------------------------------------------------- transport resilience

TEST(Transport, ServerRejectsEveryTruncatedFrameOverRealSocket) {
    // S4: the reader-side guarantee behind all retry logic — a peer that
    // dies mid-frame (any prefix, including a torn length header) yields a
    // clean "connection closed", never a hang, a partial payload, or a
    // desynchronized success.
    JobRequest req;
    req.id = 42;
    req.tenant = "t";
    req.qasm = "OPENQASM 2.0;\nqreg q[1];\n";
    const std::string payload = encode_job_request(req);
    std::string wire;
    qoc::put_u32(wire, static_cast<std::uint32_t>(payload.size()));
    wire += payload;

    for (std::size_t n = 0; n < wire.size(); ++n) {
        int fds[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        ASSERT_EQ(::send(fds[0], wire.data(), n, MSG_NOSIGNAL),
                  static_cast<ssize_t>(n));
        ::close(fds[0]); // peer dies mid-frame
        std::string got;
        EXPECT_FALSE(read_frame(fds[1], got)) << "prefix length " << n;
        ::close(fds[1]);
    }
    // The full frame still round-trips (the loop above is not vacuous).
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(::send(fds[0], wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    ::close(fds[0]);
    std::string got;
    EXPECT_TRUE(read_frame(fds[1], got));
    EXPECT_EQ(got, payload);
    ::close(fds[1]);
}

TEST(Transport, InjectedTornWriteSurfacesAsClosedConnection) {
    // S4: the service.write site tears the frame (a short prefix escapes);
    // the writer reports the connection dead and the reader on the other end
    // rejects the torn bytes rather than decoding garbage.
    const FaultGuard guard("service.write=1");
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    JobRequest req;
    req.id = 7;
    req.tenant = "t";
    req.qasm = "OPENQASM 2.0;\nqreg q[1];\n";
    EXPECT_FALSE(write_frame(fds[0], encode_job_request(req)));
    EXPECT_EQ(util::fault::fired("service.write"), 1u);
    ::close(fds[0]);
    std::string got;
    EXPECT_FALSE(read_frame(fds[1], got)); // torn prefix, then EOF
    ::close(fds[1]);
}

TEST(Transport, InjectedFrameRotIsRejectedByEveryDecoder) {
    const FaultGuard guard("service.frame=1");
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    JobRequest req;
    req.id = 9;
    req.tenant = "t";
    req.qasm = "OPENQASM 2.0;\nqreg q[1];\n";
    ASSERT_TRUE(write_frame(fds[0], encode_job_request(req)));
    std::string got;
    ASSERT_TRUE(read_frame(fds[1], got)); // framing survives; content is rot
    EXPECT_FALSE(peek_type(got).has_value());
    EXPECT_FALSE(decode_job_request(got).has_value());
    ::close(fds[0]);
    ::close(fds[1]);
}

// ------------------------------------------------------- client resilience

/// A listening socket that accepts nothing and answers nothing: the stalled
/// server every client timeout exists for.
struct SilentServer {
    int fd = -1;
    std::string path;
    explicit SilentServer(std::string p) : path(std::move(p)) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
        ::listen(fd, 8);
    }
    ~SilentServer() {
        if (fd >= 0) ::close(fd);
        ::unlink(path.c_str());
    }
};

TEST(Client, CallTimeoutSurfacesAsClientTimeout) {
    // S1: a server that accepts the job but never answers must not absorb
    // the client forever — the bounded wait expires as the *distinct*
    // ClientTimeout type (a slow server is not a dead one; callers decide).
    const SilentServer server(test_socket_path());
    ClientOptions copt;
    copt.call_timeout_ms = 150.0;
    EpocClient client(server.path, copt);
    const std::uint64_t id = client.submit("OPENQASM 2.0;\nqreg q[1];\n", "t");
    EXPECT_THROW(client.wait_for(id), ClientTimeout);
}

TEST(Client, JobDeadlineBoundsTheWaitEvenWithoutCallTimeout) {
    // S1: wait_for() on a job that carried deadline_ms is bounded by
    // deadline * grace + slack, independent of call_timeout_ms.
    const SilentServer server(test_socket_path());
    ClientOptions copt;
    copt.deadline_grace = 1.0;
    copt.deadline_slack_ms = 100.0;
    EpocClient client(server.path, copt);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t id =
        client.submit("OPENQASM 2.0;\nqreg q[1];\n", "t", 0, 50.0);
    EXPECT_THROW(client.wait_for(id), ClientTimeout);
    const double waited_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    EXPECT_LT(waited_ms, 5000.0); // bounded by ~150ms + scheduling noise
}

TEST(Daemon, RetryingClientRecoversFromTornServerWriteWithIdenticalDigest) {
    // The tentpole invariant end to end: the daemon computes the job, the
    // response write is torn (service.write arrival #2 — #1 is the client's
    // submit), the connection dies, the retry layer reconnects and re-submits
    // the same id, and the daemon answers from its replay table — one
    // response, bit-identical digest, no recompute.
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 1;
    opt.compiler = cheap_options();
    EpocDaemon daemon(opt);
    daemon.start();

    const std::string qasm = circuit::to_qasm(bench::ghz(3));
    core::EpocCompiler local(cheap_options());
    const std::uint64_t want = local_digest(local, qasm);

    ClientOptions copt;
    copt.retry = true;
    copt.backoff_initial_ms = 5.0;
    EpocClient client(opt.socket_path, copt);
    {
        const FaultGuard guard("service.write=2");
        const JobResponse resp = client.compile(qasm, "alice");
        EXPECT_EQ(resp.status, JobStatus::ok);
        EXPECT_EQ(resp.digest, want);
        EXPECT_EQ(util::fault::fired("service.write"), 1u);
    }
    EXPECT_EQ(client.connects(), 2); // exactly one reconnect

    EpocClient probe(opt.socket_path);
    const StatusResponse status = probe.status();
    EXPECT_EQ(counter_value(status, "service.replay_hits"), 1u);
    EXPECT_EQ(counter_value(status, "service.tenant.alice.replayed"), 1u);
    EXPECT_EQ(counter_value(status, "service.tenant.alice.completed"), 1u);
    daemon.stop();
}

// --------------------------------------------------------- server hardening

TEST(Daemon, WatchdogFiresOnWedgedExecutor) {
    // A job wedged past deadline * grace (the service.executor_stall site is
    // a loop only the job's own token can break) must be cancelled by the
    // watchdog and its executor returned to the pool — proven by the next
    // job completing normally.
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 1;
    opt.compiler = cheap_options();
    opt.watchdog_poll_ms = 5.0;
    opt.watchdog_grace = 1.0;
    opt.watchdog_min_grace_ms = 50.0;
    EpocDaemon daemon(opt);
    daemon.start();

    const std::string qasm = circuit::to_qasm(bench::ghz(3));
    EpocClient client(opt.socket_path);
    {
        const FaultGuard guard("service.executor_stall=1");
        const JobResponse resp = client.compile(qasm, "t", 0, 100.0);
        EXPECT_EQ(resp.status, JobStatus::cancelled);
    }
    EpocClient probe(opt.socket_path);
    EXPECT_EQ(counter_value(probe.status(), "service.watchdog_fired"), 1u);
    // The executor survived the wedge: the next job compiles fine.
    const JobResponse after = client.compile(qasm, "t");
    EXPECT_EQ(after.status, JobStatus::ok);
    daemon.stop();
}

TEST(Daemon, ClientKilledMidJobIsCancelledWithAccounting) {
    // S4: kill a client while its job is wedged on the only executor; the
    // disconnect must fire the job's token (freeing the executor) and the
    // tenant's `cancelled` counter must record it.
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 1;
    opt.compiler = cheap_options();
    EpocDaemon daemon(opt);
    daemon.start();

    const FaultGuard guard("service.executor_stall=1");
    auto victim = std::make_unique<EpocClient>(opt.socket_path);
    victim->submit(circuit::to_qasm(bench::ghz(3)), "victim");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    victim.reset(); // kill mid-job: only the disconnect can break the wedge

    EpocClient probe(opt.socket_path);
    std::uint64_t cancelled = 0;
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (cancelled == 0 && std::chrono::steady_clock::now() < give_up) {
        cancelled =
            counter_value(probe.status(), "service.tenant.victim.cancelled");
        if (cancelled == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(cancelled, 1u);
    daemon.stop();
}

TEST(Daemon, StaleSocketIsReclaimedButLiveSocketIsNot) {
    // S2, live half: a second daemon must refuse to steal a serving path.
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.compiler = cheap_options();
    EpocDaemon live(opt);
    live.start();
    {
        EpocDaemon thief(opt);
        EXPECT_THROW(thief.start(), std::runtime_error);
    }
    // The live daemon kept serving through the attempted theft.
    EpocClient probe(opt.socket_path);
    EXPECT_NO_THROW(probe.status());
    live.stop();

    // S2, stale half: a leftover socket file with no listener behind it (a
    // crashed daemon's corpse) is reclaimed and serving starts normally.
    const std::string stale_path = test_socket_path();
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, stale_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // no listen(): the file stays, nothing answers
    }
    DaemonOptions opt2;
    opt2.socket_path = stale_path;
    opt2.compiler = cheap_options();
    EpocDaemon phoenix(opt2);
    EXPECT_NO_THROW(phoenix.start());
    EpocClient probe2(stale_path);
    EXPECT_NO_THROW(probe2.status());
    phoenix.stop();
}

TEST(Daemon, InProcessChaosSoakUnderTransportFaults) {
    // The chaos-soak CI job's in-process twin, which is what puts the whole
    // fault/retry/replay machinery under TSan: transport sites at a few
    // percent, two retry-enabled clients, and still every job answered ok
    // with digests bit-identical to library mode.
    const FaultGuard guard(
        "service.read=%5@3;service.write=%7@5;service.frame=%13@7");
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 2;
    opt.compiler = cheap_options();
    EpocDaemon daemon(opt);
    daemon.start();

    const std::vector<std::string> circuits = {
        circuit::to_qasm(bench::ghz(3)), circuit::to_qasm(bench::qft(3))};
    core::EpocCompiler local(cheap_options());
    std::vector<std::uint64_t> want;
    {
        // Baseline digests computed with the sites disarmed: the compiler
        // shares this process, and a store/transport site firing inside the
        // local compile would poison the ground truth.
        util::fault::clear();
        for (const std::string& qasm : circuits)
            want.push_back(local_digest(local, qasm));
        util::fault::configure(
            "service.read=%5@3;service.write=%7@5;service.frame=%13@7");
    }

    constexpr int kClients = 2;
    constexpr int kRounds = 3;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            try {
                ClientOptions copt;
                copt.retry = true;
                copt.max_reconnects = 50;
                copt.backoff_initial_ms = 2.0;
                copt.backoff_max_ms = 50.0;
                copt.backoff_seed = static_cast<std::uint64_t>(t + 1);
                copt.call_timeout_ms = 120000.0; // hang backstop, not a bound
                EpocClient client(opt.socket_path, copt);
                for (int round = 0; round < kRounds; ++round)
                    for (std::size_t i = 0; i < circuits.size(); ++i) {
                        const JobResponse resp = client.compile(
                            circuits[i], "chaos" + std::to_string(t));
                        if (resp.status != JobStatus::ok ||
                            resp.digest != want[i])
                            failures.fetch_add(1);
                    }
            } catch (...) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
    // Proof the chaos actually happened (otherwise this test is vacuous):
    // at least one transport fault fired. Read before clear() — it resets
    // the counters.
    const std::size_t faults_fired = util::fault::fired("service.read") +
                                     util::fault::fired("service.write") +
                                     util::fault::fired("service.frame");
    EXPECT_GT(faults_fired, 0u);
    util::fault::clear(); // probe and shutdown on a clean transport
    EpocClient probe(opt.socket_path);
    EXPECT_NO_THROW(probe.status());
    daemon.stop();
}

TEST(Daemon, StopAnswersQueuedJobsAsCancelled) {
    // One executor, several queued jobs, then stop() from under them: every
    // job still gets exactly one response (ok for whatever finished,
    // cancelled for the rest) and stop() returns promptly.
    DaemonOptions opt;
    opt.socket_path = test_socket_path();
    opt.num_executors = 1;
    opt.compiler = cheap_options();
    EpocDaemon daemon(opt);
    daemon.start();

    const std::string qasm = circuit::to_qasm(bench::qft(3));
    EpocClient client(opt.socket_path);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) ids.push_back(client.submit(qasm, "t"));
    daemon.stop();
    int answered = 0;
    for (const std::uint64_t id : ids) {
        try {
            const JobResponse resp = client.wait_for(id);
            // Any terminal status is acceptable; no hangs, no garbage.
            EXPECT_LE(static_cast<int>(resp.status),
                      static_cast<int>(JobStatus::error));
            ++answered;
        } catch (const std::exception&) {
            // Connection torn down before the response: also a clean outcome
            // for jobs cancelled by shutdown — the guarantee under test is
            // "prompt, no hang, no crash".
            break;
        }
    }
    EXPECT_GE(answered, 0); // reaching here at all is the real assertion

    // Drain accounting: every submitted job reached a terminal status (no
    // job silently dropped) and nothing is left queued after stop().
    const StatusResponse s = daemon.status();
    EXPECT_EQ(counter_value(s, "service.queued"), 0u);
    EXPECT_EQ(counter_value(s, "service.in_flight"), 0u);
    const std::uint64_t terminal =
        counter_value(s, "service.tenant.t.completed") +
        counter_value(s, "service.tenant.t.cancelled") +
        counter_value(s, "service.tenant.t.shed_deadline") +
        counter_value(s, "service.tenant.t.rejected_overload") +
        counter_value(s, "service.tenant.t.failed");
    EXPECT_EQ(terminal, counter_value(s, "service.tenant.t.submitted"));
    EXPECT_EQ(counter_value(s, "service.drain_deadline_exceeded"), 0u);
}

} // namespace
