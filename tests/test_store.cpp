// Persistent pulse store (store/pulse_store.h) and its codec (qoc/pulse_io.h):
//
//   * exact round-trip of every Pulse / LatencyResult field, doubles to the
//     bit (NaN payloads included);
//   * corruption robustness: truncated, bit-flipped, zero-length and
//     wrong-version files are quarantined and transparently recomputed,
//     never fatal; a hash collision (same content address, different key) is
//     a miss, not a poisoned hit;
//   * the L2 protocol through PulseLibrary: memory miss -> store probe ->
//     promote, authoritative write-back, degraded results never persisted;
//   * concurrency: two libraries sharing one store under a thread hammer;
//   * the compile-level guarantee: a warm run from a populated store does
//     zero GRAPE work and is bit-identical to the cold run, at every thread
//     count;
//   * store I/O fault injection (store.read / store.write / store.rename)
//     degrades to a cold store, never to a degraded compile or a torn file.
#include "store/pulse_store.h"

#include "bench_circuits/generators.h"
#include "circuit/gate.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "qoc/pulse_io.h"
#include "util/fault_injection.h"
#include "util/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

namespace {

namespace fs = std::filesystem;
using namespace epoc;
using namespace epoc::qoc;
using epoc::linalg::Matrix;
using epoc::store::PulseStore;
using epoc::store::PulseStoreOptions;

std::uint64_t test_pid() {
#ifdef __unix__
    return static_cast<std::uint64_t>(::getpid());
#else
    return 0;
#endif
}

/// Unique per-test scratch directory, removed on destruction. ctest runs the
/// suite in parallel, so names carry the pid plus a process-local counter.
struct TempDir {
    fs::path path;
    TempDir() {
        static std::atomic<int> counter{0};
        path = fs::temp_directory_path() /
               ("epoc-store-test-" + std::to_string(test_pid()) + "-" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
};

/// Disarm the fault harness however a test exits.
struct FaultGuard {
    ~FaultGuard() { util::fault::clear(); }
};

bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

std::size_t count_entries(const fs::path& dir) {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file() && e.path().extension() == ".pulse") ++n;
    return n;
}

std::uint64_t entry_bytes(const fs::path& dir) {
    std::uint64_t total = 0;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file() && e.path().extension() == ".pulse")
            total += e.file_size();
    return total;
}

std::size_t quarantined_count(const fs::path& dir) {
    const fs::path q = dir / "quarantine";
    if (!fs::is_directory(q)) return 0;
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(q))
        if (e.is_regular_file()) ++n;
    return n;
}

/// A result with every field set to something distinctive (including the
/// degradation flags — the codec is total even though the store refuses
/// non-authoritative entries).
LatencyResult sample_result() {
    LatencyResult r;
    r.pulse.amplitudes = {
        {0.1, -0.25, 5e-324 /* subnormal */, -0.0},
        {1.0 / 3.0, std::numeric_limits<double>::max(), 0.0, 42.5},
        {-1e-300, 2.0, 3.0, 4.0},
    };
    r.pulse.dt = 2.0000000000000004; // not exactly representable as "2"
    r.pulse.fidelity = 0.99712345678901234;
    r.pulse.grape_iterations = 137;
    r.pulse.warm_start_applied = true;
    r.pulse.warm_start_mismatch = true;
    r.pulse.nonfinite_reseeds = 2;
    r.grape_runs = 9;
    r.feasible = true;
    return r;
}

void expect_result_bits_equal(const LatencyResult& a, const LatencyResult& b) {
    ASSERT_EQ(a.pulse.amplitudes.size(), b.pulse.amplitudes.size());
    for (std::size_t j = 0; j < a.pulse.amplitudes.size(); ++j) {
        ASSERT_EQ(a.pulse.amplitudes[j].size(), b.pulse.amplitudes[j].size());
        for (std::size_t k = 0; k < a.pulse.amplitudes[j].size(); ++k)
            EXPECT_TRUE(same_bits(a.pulse.amplitudes[j][k], b.pulse.amplitudes[j][k]))
                << "line " << j << " slot " << k;
    }
    EXPECT_TRUE(same_bits(a.pulse.dt, b.pulse.dt));
    EXPECT_TRUE(same_bits(a.pulse.fidelity, b.pulse.fidelity));
    EXPECT_EQ(a.pulse.grape_iterations, b.pulse.grape_iterations);
    EXPECT_EQ(a.pulse.warm_start_applied, b.pulse.warm_start_applied);
    EXPECT_EQ(a.pulse.warm_start_mismatch, b.pulse.warm_start_mismatch);
    EXPECT_EQ(a.pulse.timed_out, b.pulse.timed_out);
    EXPECT_EQ(a.pulse.nonfinite_reseeds, b.pulse.nonfinite_reseeds);
    EXPECT_EQ(a.pulse.nonfinite_aborted, b.pulse.nonfinite_aborted);
    EXPECT_EQ(a.grape_runs, b.grape_runs);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.injected, b.injected);
}

/// Cheap search settings so unit tests spend time in the store, not GRAPE.
LatencySearchOptions cheap_search() {
    LatencySearchOptions opt;
    opt.fidelity_threshold = 0.5;
    opt.max_slots = 8;
    opt.grape.max_iterations = 25;
    return opt;
}

/// Member k of phase-equivalence class `cls` (see the concurrent-library
/// tests): same operation, class-dependent angle, k-dependent global phase.
Matrix class_member(int cls, int k) {
    Matrix u = circuit::kind_matrix(circuit::GateKind::RZ, {0.1 + 0.37 * cls});
    u *= std::polar(1.0, 0.211 * k);
    return u;
}

// ---------------------------------------------------------------- pulse_io

TEST(PulseIo, ExactDoubleIsInjectiveAndStable) {
    EXPECT_EQ(exact_double(0.0).size(), 16u);
    EXPECT_NE(exact_double(0.0), exact_double(-0.0));
    const double lr = 0.003;
    EXPECT_NE(exact_double(lr), exact_double(std::nextafter(lr, 1.0)))
        << "one-ulp differences must produce distinct keys";
    EXPECT_EQ(exact_double(lr), exact_double(0.003));
    // Non-finite values have well-defined encodings too.
    EXPECT_NE(exact_double(std::numeric_limits<double>::quiet_NaN()),
              exact_double(std::numeric_limits<double>::infinity()));
}

TEST(PulseIo, Fnv1a64MatchesReferenceVectors) {
    // Published FNV-1a test vectors.
    EXPECT_EQ(fnv1a64("", 0), 14695981039346656037ULL);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64(std::string("foobar")), 0x85944171f73967e8ULL);
}

TEST(PulseIo, LatencyResultRoundTripsEveryFieldExactly) {
    const LatencyResult r = sample_result();
    const std::optional<LatencyResult> back =
        decode_latency_result(encode_latency_result(r));
    ASSERT_TRUE(back.has_value());
    expect_result_bits_equal(r, *back);
}

TEST(PulseIo, NonFiniteAndFlaggedFieldsRoundTrip) {
    LatencyResult r = sample_result();
    r.pulse.fidelity = std::numeric_limits<double>::quiet_NaN();
    r.pulse.amplitudes[0][1] = std::numeric_limits<double>::infinity();
    r.pulse.timed_out = true;
    r.pulse.nonfinite_aborted = true;
    r.feasible = false;
    r.timed_out = true;
    r.injected = true;
    const std::optional<LatencyResult> back =
        decode_latency_result(encode_latency_result(r));
    ASSERT_TRUE(back.has_value());
    expect_result_bits_equal(r, *back);
}

TEST(PulseIo, EmptyPulseRoundTrips) {
    LatencyResult r; // default: no amplitudes, zero slots
    const std::optional<LatencyResult> back =
        decode_latency_result(encode_latency_result(r));
    ASSERT_TRUE(back.has_value());
    expect_result_bits_equal(r, *back);
}

TEST(PulseIo, EveryTruncationIsRejectedCleanly) {
    const std::string bytes = encode_latency_result(sample_result());
    for (std::size_t n = 0; n < bytes.size(); ++n)
        EXPECT_FALSE(decode_latency_result(bytes.substr(0, n)).has_value())
            << "prefix of " << n << " bytes decoded";
    EXPECT_TRUE(decode_latency_result(bytes).has_value());
    EXPECT_FALSE(decode_latency_result(bytes + 'x').has_value())
        << "trailing garbage accepted";
}

TEST(PulseIo, AbsurdLengthFieldsDoNotAllocate) {
    // A crafted buffer claiming 2^32-1 control lines must fail fast, not
    // attempt the allocation.
    std::string bytes;
    put_u32(bytes, 0xffffffffu);
    ByteReader in(bytes.data(), bytes.size());
    Pulse p;
    EXPECT_FALSE(decode_pulse(in, p));
    // And a plausible line count with an absurd slot count likewise.
    bytes.clear();
    put_u32(bytes, 1);
    put_u32(bytes, 0x00ffffffu); // kMaxSlots boundary, but no data behind it
    ByteReader in2(bytes.data(), bytes.size());
    EXPECT_FALSE(decode_pulse(in2, p));
}

// --------------------------------------------------------------- PulseStore

TEST(PulseStoreUnit, StoreAndLoadRoundTrips) {
    TempDir dir;
    PulseStore store({dir.str()});
    const LatencyResult r = sample_result();
    store.store("some|key", r);
    EXPECT_EQ(store.stats().writes, 1u);
    EXPECT_TRUE(fs::exists(store.entry_path("some|key")));

    const std::optional<LatencyResult> back = store.load("some|key");
    ASSERT_TRUE(back.has_value());
    expect_result_bits_equal(r, *back);
    EXPECT_EQ(store.stats().hits, 1u);

    EXPECT_FALSE(store.load("other|key").has_value());
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(PulseStoreUnit, SurvivesReopen) {
    TempDir dir;
    const LatencyResult r = sample_result();
    {
        PulseStore store({dir.str()});
        store.store("k", r);
    }
    PulseStore reopened({dir.str()});
    EXPECT_GT(reopened.stats().bytes, 0u) << "existing entries must be accounted";
    const std::optional<LatencyResult> back = reopened.load("k");
    ASSERT_TRUE(back.has_value());
    expect_result_bits_equal(r, *back);
}

TEST(PulseStoreUnit, RefusesDegradedResults) {
    TempDir dir;
    PulseStore store({dir.str()});
    LatencyResult timed = sample_result();
    timed.timed_out = true;
    LatencyResult injected = sample_result();
    injected.injected = true;
    LatencyResult aborted = sample_result();
    aborted.pulse.nonfinite_aborted = true;
    store.store("a", timed);
    store.store("b", injected);
    store.store("c", aborted);
    EXPECT_EQ(store.stats().writes, 0u);
    EXPECT_EQ(count_entries(dir.path), 0u);

    // Deterministic infeasibility, by contrast, is authoritative and persists.
    LatencyResult infeasible = sample_result();
    infeasible.feasible = false;
    store.store("d", infeasible);
    EXPECT_EQ(store.stats().writes, 1u);
    const auto back = store.load("d");
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->feasible);
}

TEST(PulseStoreUnit, TruncatedFileQuarantinedAndRecomputable) {
    TempDir dir;
    PulseStore store({dir.str()});
    store.store("k", sample_result());
    const fs::path p = store.entry_path("k");
    fs::resize_file(p, fs::file_size(p) - 7); // tear the checksum trailer

    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(p)) << "corrupt file must be moved aside";
    EXPECT_EQ(quarantined_count(dir.path), 1u);

    // Second probe is a plain miss; a re-publish heals the entry.
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    store.store("k", sample_result());
    EXPECT_TRUE(store.load("k").has_value());
}

TEST(PulseStoreUnit, BitFlipQuarantined) {
    TempDir dir;
    PulseStore store({dir.str()});
    store.store("k", sample_result());
    const fs::path p = store.entry_path("k");
    {
        std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(fs::file_size(p) / 2));
        f.put('\x7f');
    }
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(quarantined_count(dir.path), 1u);
}

TEST(PulseStoreUnit, ZeroLengthFileQuarantined) {
    TempDir dir;
    PulseStore store({dir.str()});
    { std::ofstream(store.entry_path("k"), std::ios::binary); }
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(quarantined_count(dir.path), 1u);
}

TEST(PulseStoreUnit, WrongVersionQuarantined) {
    TempDir dir;
    PulseStore store({dir.str()});
    store.store("k", sample_result());
    const fs::path p = store.entry_path("k");
    {
        // The format version lives at offset 8, right after the magic.
        std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8);
        f.put('\x63');
    }
    EXPECT_FALSE(store.load("k").has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(quarantined_count(dir.path), 1u);
}

TEST(PulseStoreUnit, HashCollisionIsMissNotPoison) {
    TempDir dir;
    PulseStore store({dir.str()});
    store.store("key-one", sample_result());
    // Simulate fnv1a64("key-two") == fnv1a64("key-one") by planting key-one's
    // (fully valid) entry at key-two's content address.
    fs::copy_file(store.entry_path("key-one"), store.entry_path("key-two"));

    EXPECT_FALSE(store.load("key-two").has_value())
        << "an entry for a different key must never be served";
    EXPECT_EQ(store.stats().collisions, 1u);
    EXPECT_EQ(store.stats().corrupt, 0u) << "a collision is not corruption";
    EXPECT_TRUE(fs::exists(store.entry_path("key-two"))) << "not quarantined";
    EXPECT_TRUE(store.load("key-one").has_value());
}

TEST(PulseStoreUnit, EvictionRespectsByteBudget) {
    TempDir dir;
    PulseStoreOptions opt;
    opt.dir = dir.str();
    opt.max_bytes = 2048;
    PulseStore store(opt);
    for (int i = 0; i < 40; ++i)
        store.store("key-" + std::to_string(i), sample_result());
    EXPECT_GT(store.stats().evicted, 0u);
    EXPECT_LE(store.stats().bytes, opt.max_bytes);
    EXPECT_LE(entry_bytes(dir.path), opt.max_bytes);
    EXPECT_GT(count_entries(dir.path), 0u) << "compaction must not empty the store";
}

TEST(PulseStoreUnit, UnlimitedBudgetNeverEvicts) {
    TempDir dir;
    PulseStoreOptions opt;
    opt.dir = dir.str();
    opt.max_bytes = 0; // disables compaction
    PulseStore store(opt);
    for (int i = 0; i < 20; ++i)
        store.store("key-" + std::to_string(i), sample_result());
    store.compact();
    EXPECT_EQ(store.stats().evicted, 0u);
    EXPECT_EQ(count_entries(dir.path), 20u);
}

TEST(PulseStoreUnit, UncreatableDirectoryThrows) {
    TempDir dir;
    const fs::path blocker = dir.path / "file";
    { std::ofstream(blocker) << "x"; }
    EXPECT_THROW(PulseStore({(blocker / "sub").string()}), std::runtime_error);
    EXPECT_THROW(PulseStore({""}), std::runtime_error);
}

TEST(PulseStoreUnit, EnospcTripsMemoryOnlyModeOnce) {
    // The store.enospc site stands in for a full disk (these tests often run
    // as root, where permission tricks cannot make a write fail): the first
    // ENOSPC-class failure trips memory-only mode — loads keep serving,
    // writes skip from then on, and the trip is counted exactly once.
    TempDir dir;
    FaultGuard guard;
    PulseStore store({dir.str()});
    const LatencyResult r = sample_result();
    store.store("key-a", r); // clean write before the disk "fills"
    ASSERT_TRUE(store.load("key-a").has_value());

    util::fault::configure("store.enospc=1");
    store.store("key-b", r);
    EXPECT_TRUE(store.memory_only());
    {
        const auto st = store.stats();
        EXPECT_EQ(st.disabled_enospc, 1u);
        EXPECT_EQ(st.io_errors, 1u);
        EXPECT_EQ(st.writes, 1u);
    }

    // Even with the fault disarmed (disk "recovered"), the trip is one-way:
    // writes skip with their own counter, nothing lands on disk.
    util::fault::clear();
    store.store("key-c", r);
    store.store("key-d", r);
    {
        const auto st = store.stats();
        EXPECT_EQ(st.skipped_disabled, 2u);
        EXPECT_EQ(st.disabled_enospc, 1u);
        EXPECT_EQ(st.writes, 1u);
    }
    EXPECT_FALSE(fs::exists(store.entry_path("key-c")));
    // Loads keep serving what made it to disk before the trip.
    ASSERT_TRUE(store.load("key-a").has_value());
}

TEST(PulseStoreUnit, QuarantineFailureIsCountedNotFatal) {
    // S3: squat the quarantine name with a regular file so the corruption
    // path's create_directories and rename both fail — the error_codes must
    // land in io_errors, the corrupt entry must still be removed (deleted
    // when it cannot be moved aside), and nothing throws.
    TempDir dir;
    PulseStore store({dir.str()});
    store.store("k", sample_result());
    { std::ofstream(dir.path / "quarantine") << "squatter"; }
    fs::resize_file(store.entry_path("k"), 10); // below the minimum entry size

    EXPECT_FALSE(store.load("k").has_value());
    const auto st = store.stats();
    EXPECT_EQ(st.corrupt, 1u);
    EXPECT_GE(st.io_errors, 2u); // create_directories + rename both failed
    EXPECT_FALSE(fs::exists(store.entry_path("k")))
        << "unquarantinable corrupt entry must be deleted, not served forever";
}

// ------------------------------------------------- PulseLibrary integration

TEST(PulseLibraryStore, MemoryMissPromotesFromDiskWithoutGrape) {
    TempDir dir;
    PulseStore store({dir.str()});
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();

    PulseLibrary cold(true);
    cold.set_store(&store);
    const auto generated = cold.get_or_generate(h, circuit::hadamard(), opt);
    EXPECT_EQ(cold.stats().store_misses, 1u);
    EXPECT_EQ(cold.stats().store_writes, 1u);
    EXPECT_EQ(store.stats().writes, 1u);

    // Fresh library, same store: the probe must hit and GRAPE must not run.
    PulseLibrary warm(true);
    warm.set_store(&store);
    util::Tracer tracer(true);
    warm.set_tracer(&tracer);
    const auto promoted = warm.get_or_generate(h, circuit::hadamard(), opt);
    EXPECT_EQ(warm.stats().store_hits, 1u);
    EXPECT_EQ(warm.stats().store_misses, 0u);
    EXPECT_EQ(tracer.report().counter("qoc.grape_runs"), 0u)
        << "a store hit must skip the latency search entirely";
    EXPECT_EQ(tracer.report().counter("qoc.store_promotions"), 1u);
    expect_result_bits_equal(*generated, *promoted);

    // Promotion is into memory: the next lookup is a pure L1 hit.
    warm.get_or_generate(h, circuit::hadamard(), opt);
    EXPECT_EQ(warm.stats().hits, 1u);
    EXPECT_EQ(warm.stats().store_hits, 1u);
}

TEST(PulseLibraryStore, DegradedResultsNeverReachDisk) {
    FaultGuard guard;
    TempDir dir;
    PulseStore store({dir.str()});
    const auto h = make_block_hamiltonian(1);
    PulseLibrary lib(true);
    lib.set_store(&store);

    util::fault::configure("latency.infeasible=*"); // injected => degraded
    const auto degraded = lib.get_or_generate(h, circuit::pauli_x(), cheap_search());
    EXPECT_TRUE(degraded->injected);
    EXPECT_FALSE(degraded->authoritative());
    EXPECT_EQ(store.stats().writes, 0u);
    EXPECT_EQ(count_entries(dir.path), 0u) << "no degraded entry may be persisted";
    EXPECT_EQ(lib.stats().store_writes, 0u);

    // With the fault gone the entry regenerates clean and then persists.
    util::fault::clear();
    const auto clean = lib.get_or_generate(h, circuit::pauli_x(), cheap_search());
    EXPECT_TRUE(clean->authoritative());
    EXPECT_EQ(count_entries(dir.path), 1u);
}

TEST(PulseLibraryStore, CorruptEntryRecomputedTransparently) {
    TempDir dir;
    PulseStore store({dir.str()});
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    {
        PulseLibrary lib(true);
        lib.set_store(&store);
        lib.get_or_generate(h, circuit::hadamard(), opt);
    }
    // Corrupt the single entry on disk.
    for (const auto& e : fs::directory_iterator(dir.path)) {
        if (e.path().extension() != ".pulse") continue;
        fs::resize_file(e.path(), fs::file_size(e.path()) / 2);
    }
    PulseLibrary lib(true);
    lib.set_store(&store);
    const auto r = lib.get_or_generate(h, circuit::hadamard(), opt);
    EXPECT_GT(r->pulse.num_slots(), 0);
    EXPECT_TRUE(r->authoritative());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(lib.stats().store_misses, 1u);
    EXPECT_EQ(count_entries(dir.path), 1u) << "the recompute must re-publish";
}

TEST(PulseLibraryStore, TwoLibrariesShareOneStoreUnderHammer) {
    TempDir dir;
    PulseStore store({dir.str()});
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();
    const int kClasses = 5;
    const int kThreads = 8;
    const int kLookupsPerThread = 4 * kClasses;

    PulseLibrary lib_a(true), lib_b(true);
    lib_a.set_store(&store);
    lib_b.set_store(&store);

    std::atomic<int> start_gate{kThreads};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            start_gate.fetch_sub(1);
            while (start_gate.load() > 0) std::this_thread::yield();
            for (int i = 0; i < kLookupsPerThread; ++i) {
                const int cls = (i + t) % kClasses;
                PulseLibrary& lib = ((i + t) % 2 == 0) ? lib_a : lib_b;
                // One fixed representative per class: bit-identity across the
                // libraries is only promised for bit-identical generation
                // inputs (a phase-rotated member of the same class generates
                // an equal-up-to-ulp, not bit-equal, pulse — and which member
                // wins the single-flight race is scheduling-dependent).
                const auto r = lib.get_or_generate(h, class_member(cls, 0), opt);
                if (r == nullptr || r->pulse.num_slots() <= 0) failures.fetch_add(1);
            }
        });
    }
    for (std::thread& th : threads) th.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(count_entries(dir.path), static_cast<std::size_t>(kClasses));
    // Whatever the interleaving, the two libraries agree bit-for-bit on every
    // class: either one generated and the other promoted from disk, or both
    // generated the same deterministic result.
    for (int cls = 0; cls < kClasses; ++cls) {
        const auto ra = lib_a.get_or_generate(h, class_member(cls, 0), opt);
        const auto rb = lib_b.get_or_generate(h, class_member(cls, 0), opt);
        expect_result_bits_equal(*ra, *rb);
    }
    // Every memory miss resolved through the store, one way or the other.
    const auto sa = lib_a.stats(), sb = lib_b.stats();
    EXPECT_EQ(sa.misses, sa.store_hits + sa.store_misses);
    EXPECT_EQ(sb.misses, sb.store_hits + sb.store_misses);
}

TEST(PulseLibraryStore, ProbeOutcomesPartitionExactly) {
    // Regression: a revalidation rejection used to bump BOTH store_rejected
    // and store_misses, so counted probe outcomes exceeded probes and the
    // reconciliation invariant
    //     misses == store_hits + store_misses + store_rejected
    // never balanced on any run with rejections. A probe is a hit, a miss, or
    // a rejection — exactly one of them.
    TempDir dir;
    PulseStore store({dir.str()});
    const auto h = make_block_hamiltonian(1);
    const LatencySearchOptions opt = cheap_search();

    {
        // Seed the store so a later probe can find an entry to reject.
        PulseLibrary seed(true);
        seed.set_store(&store);
        seed.get_or_generate(h, circuit::hadamard(), opt);
        const auto s = seed.stats();
        EXPECT_EQ(s.store_misses, 1u);
        EXPECT_EQ(s.store_rejected, 0u);
        EXPECT_EQ(s.misses, s.store_hits + s.store_misses + s.store_rejected);
    }

    PulseLibrary lib(true);
    lib.set_store(&store);
    int revalidations = 0;
    lib.set_revalidator([&](const std::string&, const BlockHamiltonian&,
                            const Matrix&, const LatencyResult&, bool) {
        ++revalidations;
        return false; // reject everything the tier offers
    });
    // Probe finds the seeded entry, revalidation rejects it, GRAPE
    // regenerates: one probe, one rejection, zero misses.
    lib.get_or_generate(h, circuit::hadamard(), opt);
    // Nothing stored for this key: one probe, one clean miss.
    lib.get_or_generate(h, circuit::pauli_x(), opt);
    // Pure L1 hit: no probe at all.
    lib.get_or_generate(h, circuit::hadamard(), opt);

    const auto s = lib.stats();
    EXPECT_EQ(revalidations, 1);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.store_hits, 0u);
    EXPECT_EQ(s.store_rejected, 1u);
    EXPECT_EQ(s.store_misses, 1u); // the historical double count made this 2
    EXPECT_EQ(s.misses, s.store_hits + s.store_misses + s.store_rejected);
}

// ------------------------------------------------------ compile-level tests

core::EpocOptions cheap_compile_options(int num_threads, const std::string& store_dir) {
    core::EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.num_threads = num_threads;
    opt.trace_enabled = true;
    opt.pulse_store_dir = store_dir;
    return opt;
}

TEST(StoreCompile, WarmRunIsBitIdenticalAndGrapeFree) {
    TempDir dir;
    const circuit::Circuit c = bench::ghz(3);

    // Cold run populates the store.
    core::EpocCompiler cold(cheap_compile_options(1, dir.str()));
    const core::EpocResult rc = cold.compile(c);
    ASSERT_FALSE(rc.degraded);
    ASSERT_TRUE(rc.store_enabled);
    EXPECT_GT(rc.store_stats.writes, 0u);
    EXPECT_GT(rc.trace.counter("qoc.grape_runs"), 0u);
    const std::string cold_json = core::schedule_to_json(rc.schedule);

    // Warm runs from fresh compilers (fresh pulse libraries): zero GRAPE,
    // bit-identical output, at every thread count.
    for (const int nt : {1, 2, 8}) {
        core::EpocCompiler warm(cheap_compile_options(nt, dir.str()));
        const core::EpocResult rw = warm.compile(c);
        ASSERT_FALSE(rw.degraded) << "threads=" << nt;
        EXPECT_EQ(rw.trace.counter("qoc.grape_runs"), 0u)
            << "threads=" << nt << ": warm compile must do no GRAPE work";
        EXPECT_EQ(rw.library_stats.store_misses, 0u) << "threads=" << nt;
        EXPECT_GT(rw.library_stats.store_hits, 0u) << "threads=" << nt;
        EXPECT_EQ(core::schedule_to_json(rw.schedule), cold_json)
            << "threads=" << nt;
        EXPECT_TRUE(same_bits(rw.latency_ns, rc.latency_ns)) << "threads=" << nt;
        EXPECT_TRUE(same_bits(rw.esp, rc.esp)) << "threads=" << nt;
        EXPECT_EQ(rw.num_pulses, rc.num_pulses) << "threads=" << nt;
    }
}

TEST(StoreCompile, EnvVariableArmsTheStore) {
    TempDir dir;
    ::setenv("EPOC_PULSE_STORE", dir.str().c_str(), 1);
    core::EpocOptions opt = cheap_compile_options(1, "");
    core::EpocCompiler compiler(opt);
    ::unsetenv("EPOC_PULSE_STORE");
    ASSERT_NE(compiler.store(), nullptr);
    const core::EpocResult r = compiler.compile(bench::ghz(3));
    EXPECT_TRUE(r.store_enabled);
    EXPECT_GT(r.store_stats.writes, 0u);
    EXPECT_GT(count_entries(dir.path), 0u);
}

TEST(StoreCompile, StoreIoFaultsNeverDegradeTheCompile) {
    FaultGuard guard;
    const circuit::Circuit c = bench::ghz(3);
    for (const char* site : {"store.read=*", "store.write=*", "store.rename=*"}) {
        TempDir dir;
        util::fault::configure(site);
        core::EpocCompiler compiler(cheap_compile_options(2, dir.str()));
        const core::EpocResult r = compiler.compile(c);
        EXPECT_FALSE(r.degraded) << site << ": a broken store is a cold store, "
                                            "never a degraded compile";
        EXPECT_GT(r.latency_ns, 0.0) << site;
        EXPECT_GT(r.store_stats.io_errors, 0u) << site;
        if (std::strcmp(site, "store.read=*") == 0) {
            // Probes fail but publishes still land: the store heals for the
            // next (read-capable) process.
            EXPECT_GT(count_entries(dir.path), 0u) << site;
        } else {
            // Failed publishes must leave neither entries nor torn temp
            // files behind.
            EXPECT_EQ(count_entries(dir.path), 0u) << site;
            std::size_t stray = 0;
            for (const auto& e : fs::directory_iterator(dir.path))
                if (e.is_regular_file()) ++stray;
            EXPECT_EQ(stray, 0u) << site << ": temp litter";
        }
        util::fault::clear();
    }
}

TEST(StoreCompile, InjectedDegradedPulsesNeverPersistDuringCompile) {
    FaultGuard guard;
    TempDir dir;
    util::fault::configure("latency.infeasible=*");
    core::EpocCompiler compiler(cheap_compile_options(2, dir.str()));
    const core::EpocResult r = compiler.compile(bench::ghz(3));
    EXPECT_TRUE(r.degraded); // every pulse was forced infeasible+injected
    EXPECT_EQ(r.store_stats.writes, 0u);
    EXPECT_EQ(count_entries(dir.path), 0u)
        << "a compile full of injected faults must write nothing to disk";
}

} // namespace
