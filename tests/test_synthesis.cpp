#include "synthesis/instantiate.h"
#include "synthesis/leap.h"
#include "synthesis/qsearch.h"

#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "linalg/random_unitary.h"

#include <gtest/gtest.h>

namespace {

using namespace epoc::synthesis;
using epoc::circuit::Circuit;
using epoc::circuit::circuit_unitary;
using epoc::circuit::GateKind;
using epoc::linalg::equal_up_to_global_phase;
using epoc::linalg::random_unitary;

TEST(SynthStructure, SeedHasOneVugPerQubit) {
    const SynthStructure s = SynthStructure::seed(3);
    EXPECT_EQ(s.ops.size(), 3u);
    EXPECT_EQ(s.num_params(), 9);
    EXPECT_EQ(s.cnot_count(), 0);
}

TEST(SynthStructure, ExpandAddsCnotAndTwoVugs) {
    const SynthStructure s = SynthStructure::seed(2).expanded(0, 1);
    EXPECT_EQ(s.cnot_count(), 1);
    EXPECT_EQ(s.num_params(), 12);
}

TEST(SynthStructure, UnitaryMatchesCircuitLowering) {
    const SynthStructure s = SynthStructure::seed(2).expanded(0, 1).expanded(1, 0);
    std::vector<double> params(static_cast<std::size_t>(s.num_params()));
    for (std::size_t i = 0; i < params.size(); ++i) params[i] = 0.1 * (double)(i + 1);
    const auto direct = structure_unitary(s, params);
    const auto via_circuit = circuit_unitary(structure_to_circuit(s, params));
    EXPECT_LT(direct.max_abs_diff(via_circuit), 1e-10);
}

TEST(SynthStructure, ParamCountValidated) {
    const SynthStructure s = SynthStructure::seed(2);
    EXPECT_THROW(structure_unitary(s, {0.1}), std::invalid_argument);
}

TEST(U3Derivative, MatchesFiniteDifference) {
    const double th = 0.7, ph = -0.4, la = 1.2, eps = 1e-6;
    for (int which = 0; which < 3; ++which) {
        double t = th, p = ph, l = la;
        double* var = which == 0 ? &t : which == 1 ? &p : &l;
        *var += eps;
        const auto up = epoc::circuit::u3_matrix(t, p, l);
        *var -= 2 * eps;
        const auto um = epoc::circuit::u3_matrix(t, p, l);
        auto fd = up - um;
        fd *= epoc::linalg::cplx{1.0 / (2 * eps), 0.0};
        EXPECT_LT(fd.max_abs_diff(u3_derivative(th, ph, la, which)), 1e-8) << which;
    }
}

TEST(Instantiate, ExactSingleQubit) {
    const auto u = random_unitary(2, std::uint64_t{42});
    const SynthStructure s = SynthStructure::seed(1);
    const auto fit = instantiate(s, u);
    EXPECT_TRUE(fit.converged);
    EXPECT_LT(fit.distance, 1e-7);
}

TEST(Instantiate, GradientDescendsOnTwoQubit) {
    const auto u = random_unitary(4, std::uint64_t{43});
    const SynthStructure s =
        SynthStructure::seed(2).expanded(0, 1).expanded(1, 0).expanded(0, 1);
    const auto fit = instantiate(s, u);
    // 3 CNOTs suffice for any 2-qubit unitary.
    EXPECT_LT(fit.distance, 1e-5);
}

TEST(QSearch, CzNeedsOneCnot) {
    const auto r =
        qsearch_synthesize(epoc::circuit::kind_matrix(GateKind::CZ, {}));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.cnot_count, 1);
}

TEST(QSearch, SwapNeedsThreeCnots) {
    const auto r =
        qsearch_synthesize(epoc::circuit::kind_matrix(GateKind::SWAP, {}));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.cnot_count, 3);
}

TEST(QSearch, RandomTwoQubitWithinThreeCnots) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto u = random_unitary(4, seed);
        const auto r = qsearch_synthesize(u);
        EXPECT_TRUE(r.converged) << seed;
        EXPECT_LE(r.cnot_count, 3) << seed;
        EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(r.circuit), u, 1e-4));
    }
}

TEST(QSearch, OutputUsesOnlyU3AndCx) {
    const auto u = random_unitary(4, std::uint64_t{77});
    const auto r = qsearch_synthesize(u);
    for (const auto& g : r.circuit.gates())
        EXPECT_TRUE(g.kind == GateKind::U3 || g.kind == GateKind::CX);
}

TEST(QSearch, StructuredThreeQubitBlock) {
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    const auto u = circuit_unitary(c);
    const auto r = qsearch_synthesize(u);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.cnot_count, 2); // synthesis must not exceed the original
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(r.circuit), u, 1e-4));
}

TEST(QSearch, RejectsBadDimensions) {
    EXPECT_THROW(qsearch_synthesize(Matrix(3, 3)), std::invalid_argument);
    EXPECT_THROW(qsearch_synthesize(Matrix(2, 4)), std::invalid_argument);
}

TEST(Leap, ConvergesOnStructuredThreeQubit) {
    Circuit c(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
    const auto u = circuit_unitary(c);
    LeapOptions opt;
    opt.threshold = 1e-5;
    const auto r = leap_synthesize(u, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(r.circuit), u, 1e-4));
}

TEST(Leap, SingleQubitImmediate) {
    const auto u = random_unitary(2, std::uint64_t{5});
    const auto r = leap_synthesize(u);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.cnot_count, 0);
}

} // namespace
