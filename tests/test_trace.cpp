// The tracing/metrics layer (util/trace.h) and its pipeline integration:
//
//   * Tracer semantics: RAII spans, monotonic counters, reset, and the
//     disabled path recording nothing at all.
//   * Chrome trace_event export: structurally valid JSON with "X" duration
//     events and "C" counter samples.
//   * Pipeline integration: every stage span present, cache stats folded into
//     the counter registry, counters bit-identical across thread counts, and
//     tracing never perturbing the compiled artifact.
//   * The cache-key regression: the regrouped coarse-granularity arm really
//     generates coarsened pulses even though the fine arm ran first.
#include "util/trace.h"

#include "bench_circuits/generators.h"
#include "epoc/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace {

using epoc::circuit::Circuit;
using epoc::core::EpocCompiler;
using epoc::core::EpocOptions;
using epoc::core::EpocResult;
using epoc::util::TraceEvent;
using epoc::util::TraceReport;
using epoc::util::Tracer;

// Structural JSON check: balanced containers outside strings, escapes legal.
void expect_valid_json_structure(const std::string& j) {
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : j) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\') escaped = true;
            if (c == '"') in_string = false;
            EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
            continue;
        }
        if (c == '"') in_string = true;
        if (c == '{' || c == '[') ++depth;
        if (c == '}' || c == ']') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(Tracer, DisabledRecordsNothing) {
    Tracer t(false);
    {
        const Tracer::Span s = t.span("work", "cat");
        t.add_counter("n", 5);
    }
    const TraceReport r = t.report();
    EXPECT_FALSE(r.enabled);
    EXPECT_TRUE(r.spans.empty());
    EXPECT_TRUE(r.counters.empty());
    EXPECT_EQ(r.counter("n"), 0u);
}

TEST(Tracer, SpansRecordOnDestruction) {
    Tracer t(true);
    {
        const Tracer::Span outer = t.span("outer", "test");
        const Tracer::Span inner = t.span("inner", "test");
    }
    const TraceReport r = t.report();
    ASSERT_EQ(r.spans.size(), 2u);
    EXPECT_TRUE(r.has_span("outer"));
    EXPECT_TRUE(r.has_span("inner"));
    for (const TraceEvent& ev : r.spans) {
        EXPECT_LE(ev.begin_ns, ev.end_ns);
        EXPECT_EQ(ev.category, "test");
        EXPECT_EQ(ev.tid, 0); // single thread -> dense id 0
    }
    // Sorted by begin time: outer opened first.
    EXPECT_EQ(r.spans.front().name, "outer");
}

TEST(Tracer, ExplicitEndIsIdempotent) {
    Tracer t(true);
    Tracer::Span s = t.span("once");
    s.end();
    s.end(); // no double record
    EXPECT_EQ(t.report().spans.size(), 1u);
}

TEST(Tracer, MovedFromSpanDoesNotRecord) {
    Tracer t(true);
    {
        Tracer::Span a = t.span("moved");
        const Tracer::Span b = std::move(a);
    }
    EXPECT_EQ(t.report().spans.size(), 1u);
}

TEST(Tracer, CountersAggregate) {
    Tracer t(true);
    t.add_counter("a");
    t.add_counter("a", 4);
    t.add_counter("b", 2);
    t.set_counter("c", 7);
    t.set_counter("c", 3); // overwrite, not add
    const TraceReport r = t.report();
    EXPECT_EQ(r.counter("a"), 5u);
    EXPECT_EQ(r.counter("b"), 2u);
    EXPECT_EQ(r.counter("c"), 3u);
    // Name-ordered on snapshot.
    ASSERT_EQ(r.counters.size(), 3u);
    EXPECT_EQ(r.counters[0].first, "a");
    EXPECT_EQ(r.counters[2].first, "c");
}

TEST(Tracer, ThreadsGetDenseIds) {
    Tracer t(true);
    { const Tracer::Span s = t.span("main-thread"); }
    std::thread other([&t] { const Tracer::Span s = t.span("other-thread"); });
    other.join();
    const TraceReport r = t.report();
    ASSERT_EQ(r.spans.size(), 2u);
    std::vector<int> tids;
    for (const TraceEvent& ev : r.spans) tids.push_back(ev.tid);
    std::sort(tids.begin(), tids.end());
    EXPECT_EQ(tids, (std::vector<int>{0, 1}));
}

TEST(Tracer, ResetClearsEverything) {
    Tracer t(true);
    { const Tracer::Span s = t.span("gone"); }
    t.add_counter("gone", 1);
    t.reset();
    const TraceReport r = t.report();
    EXPECT_TRUE(r.spans.empty());
    EXPECT_TRUE(r.counters.empty());
}

TEST(TraceReport, ChromeJsonStructure) {
    Tracer t(true);
    { const Tracer::Span s = t.span("stage \"one\"\t", "pipeline"); }
    t.add_counter("cache.hits", 12);
    const TraceReport r = t.report();
    const std::string j = r.to_chrome_json();
    expect_valid_json_structure(j);
    EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(j.find("stage \\\"one\\\"\\t"), std::string::npos);
    EXPECT_NE(j.find("cache.hits"), std::string::npos);
    EXPECT_NE(j.find("\"value\":12"), std::string::npos);
}

TEST(TraceReport, SummaryListsSpansAndCounters) {
    Tracer t(true);
    { const Tracer::Span s = t.span("grape 2q"); }
    { const Tracer::Span s = t.span("grape 2q"); }
    t.add_counter("qoc.grape_runs", 9);
    const std::string s = t.report().summary();
    EXPECT_NE(s.find("grape 2q: n=2"), std::string::npos);
    EXPECT_NE(s.find("qoc.grape_runs: 9"), std::string::npos);
}

// ------------------------------------------------------------ pipeline level

EpocOptions traced_options(int num_threads = 1) {
    EpocOptions opt;
    opt.trace_enabled = true;
    opt.num_threads = num_threads;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    return opt;
}

TEST(PipelineTrace, EveryStageHasASpan) {
    EpocCompiler compiler(traced_options());
    const EpocResult r = compiler.compile(epoc::bench::ghz(4));
    ASSERT_TRUE(r.trace.enabled);
    for (const char* stage : {"compile", "zx", "partition", "synthesis",
                              "pulses fine-grained", "regroup", "pulses grouped",
                              "schedule asap"})
        EXPECT_TRUE(r.trace.has_span(stage)) << stage;
    // Per-block work appears as its own spans.
    EXPECT_TRUE(r.trace.has_span("synth block 0 (1q)") ||
                r.trace.has_span("synth block 0 (2q)") ||
                r.trace.has_span("synth block 0 (3q)"));
    bool any_pulse_block = false;
    bool any_grape = false;
    for (const TraceEvent& ev : r.trace.spans) {
        any_pulse_block |= ev.name.rfind("pulse ", 0) == 0;
        any_grape |= ev.name.rfind("grape ", 0) == 0;
    }
    EXPECT_TRUE(any_pulse_block);
    EXPECT_TRUE(any_grape);
    // Spans are sorted deterministically on export.
    for (std::size_t i = 1; i < r.trace.spans.size(); ++i) {
        EXPECT_LE(r.trace.spans[i - 1].begin_ns, r.trace.spans[i].begin_ns);
    }
}

TEST(PipelineTrace, CacheStatsFoldedIntoCounters) {
    EpocCompiler compiler(traced_options());
    const EpocResult r = compiler.compile(epoc::bench::qft(3));
    EXPECT_EQ(r.trace.counter("pulse_library.hits"), r.library_stats.hits);
    EXPECT_EQ(r.trace.counter("pulse_library.misses"), r.library_stats.misses);
    EXPECT_EQ(r.trace.counter("synth_cache.hits"), r.synth_cache_stats.hits);
    EXPECT_EQ(r.trace.counter("synth_cache.misses"), r.synth_cache_stats.misses);
    EXPECT_GT(r.trace.counter("qoc.grape_runs"), 0u);
    EXPECT_GT(r.trace.counter("qoc.grape_iterations"), 0u);
    EXPECT_GT(r.trace.counter("pipeline.blocks"), 0u);
}

TEST(PipelineTrace, DisabledLeavesResultEmptyAndArtifactIdentical) {
    EpocOptions off = traced_options();
    off.trace_enabled = false;
    EpocCompiler plain(off);
    const EpocResult a = plain.compile(epoc::bench::ghz(4));
    EXPECT_FALSE(a.trace.enabled);
    EXPECT_TRUE(a.trace.spans.empty());
    EXPECT_TRUE(a.trace.counters.empty());

    // Tracing must be a pure observer: bit-identical artifact.
    EpocCompiler traced(traced_options());
    const EpocResult b = traced.compile(epoc::bench::ghz(4));
    EXPECT_EQ(a.latency_ns, b.latency_ns);
    EXPECT_EQ(a.esp, b.esp);
    EXPECT_EQ(a.num_pulses, b.num_pulses);
    EXPECT_EQ(a.library_stats.misses, b.library_stats.misses);
}

TEST(PipelineTrace, CountersBitIdenticalAcrossThreadCounts) {
    std::vector<std::vector<std::pair<std::string, std::uint64_t>>> counter_sets;
    std::vector<std::vector<std::string>> span_names;
    for (const int threads : {1, 2, 8}) {
        EpocCompiler compiler(traced_options(threads));
        const EpocResult r = compiler.compile(epoc::bench::qft(3));
        // single_flight_waits counts how many threads actually raced on a
        // key -- a scheduling artifact, deterministically zero only at
        // num_threads == 1. Everything else must match bit-for-bit.
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        for (const auto& kv : r.trace.counters)
            if (kv.first.find("single_flight_waits") == std::string::npos)
                counters.push_back(kv);
        counter_sets.push_back(std::move(counters));
        std::vector<std::string> names;
        for (const TraceEvent& ev : r.trace.spans) names.push_back(ev.name);
        std::sort(names.begin(), names.end());
        span_names.push_back(std::move(names));
    }
    // Counters aggregate order-independently: identical for any thread count.
    EXPECT_EQ(counter_sets[0], counter_sets[1]);
    EXPECT_EQ(counter_sets[0], counter_sets[2]);
    // The same set of spans is recorded (timings differ, names do not).
    EXPECT_EQ(span_names[0], span_names[1]);
    EXPECT_EQ(span_names[0], span_names[2]);
}

TEST(PipelineTrace, CoarseArmReflectsCoarseningAfterFineArm) {
    // The cache-key regression at pipeline level. The fine-grained arm always
    // runs first and fills the library at slot_granularity 1; the regrouped
    // arm then requests wide-block pulses at coarsened granularity. With the
    // old unitary-only cache key those requests could hit fine-granularity
    // entries and the documented coarsening never applied; keyed on the full
    // generation context, every coarse pulse's slot count must be a multiple
    // of its granularity.
    EpocOptions opt = traced_options();
    opt.use_zx = false;
    opt.use_kak = true; // analytic 2q synthesis: keeps the test fast
    opt.partition.max_qubits = 2;
    opt.regroup_opt.max_qubits = 4; // wide regrouped blocks -> granularity 4
    opt.regroup_opt.max_gates = 64;
    opt.latency.fidelity_threshold = 0.6; // dim-16 GRAPE stays cheap
    opt.latency.grape.max_iterations = 30;
    opt.latency.min_slots = 4;
    opt.latency.max_slots = 16;
    EpocCompiler compiler(opt);
    const EpocResult r = compiler.compile(epoc::bench::ghz(4));

    ASSERT_GT(r.trace.counter("qoc.coarse_blocks"), 0u)
        << "regroup must form at least one >=3-qubit block for this test";
    EXPECT_EQ(r.trace.counter("qoc.coarse_granularity_violations"), 0u)
        << "a coarse-arm pulse came back with a fine-granularity slot count";
    EXPECT_GT(r.trace.counter("qoc.coarse_block_slots"), 0u);
}

} // namespace
