// Verified compilation (src/verify/): independent stage-equivalence oracles,
// pulse re-simulation audits, and store revalidation.
//
//   * level plumbing: option/env resolution, off really means off;
//   * the oracles and the schedule audit against both honest and doctored
//     artifacts (a checksum-proof corruption only re-simulation can catch);
//   * pipeline integration: verify=full on a clean compile changes nothing
//     (bit-identical schedule, zero failures); an injected bad pulse is
//     detected, routed through Cause::verify_failed, recomputed, and the
//     final schedule equals the uncorrupted run's;
//   * store revalidation: post-checksum corruption (test hook) is detected on
//     load, quarantined via the store's existing path, and recomputed;
//   * a broken verifier (verify.* fault sites) degrades to "unverified" and
//     never fails or alters a clean compile;
//   * determinism: verify counters and schedules are identical across
//     {1, 2, 8} threads.
#include "verify/verify.h"

#include "bench_circuits/generators.h"
#include "circuit/gate.h"
#include "circuit/structure.h"
#include "circuit/unitary.h"
#include "epoc/export.h"
#include "epoc/pipeline.h"
#include "epoc/regroup.h"
#include "linalg/phase.h"
#include "partition/partition.h"
#include "qoc/pulse_io.h"
#include "store/pulse_store.h"
#include "util/fault_injection.h"
#include "util/sharded_cache.h"
#include "zx/optimize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

namespace {

namespace fs = std::filesystem;
using namespace epoc;
using namespace epoc::verify;
using circuit::Circuit;
using core::EpocCompiler;
using core::EpocOptions;
using core::EpocResult;
using linalg::Matrix;

std::uint64_t test_pid() {
#ifdef __unix__
    return static_cast<std::uint64_t>(::getpid());
#else
    return 0;
#endif
}

struct TempDir {
    fs::path path;
    TempDir() {
        static std::atomic<int> counter{0};
        path = fs::temp_directory_path() /
               ("epoc-verify-test-" + std::to_string(test_pid()) + "-" +
                std::to_string(counter.fetch_add(1)));
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
};

struct FaultGuard {
    explicit FaultGuard(const std::string& spec) { util::fault::configure(spec); }
    ~FaultGuard() { util::fault::clear(); }
};

struct EnvGuard {
    EnvGuard(const char* name, const char* value) : name_(name) {
#ifdef __unix__
        ::setenv(name, value, 1);
#endif
    }
    ~EnvGuard() {
#ifdef __unix__
        ::unsetenv(name_);
#endif
    }
    const char* name_;
};

EpocOptions cheap_options(int num_threads, VerifyLevel level) {
    EpocOptions opt;
    opt.latency.fidelity_threshold = 0.99;
    opt.latency.grape.max_iterations = 120;
    opt.qsearch.threshold = 1e-4;
    opt.qsearch.instantiate.restarts = 2;
    opt.num_threads = num_threads;
    opt.verify_level = level;
    return opt;
}

std::uint64_t digest(const EpocResult& r) {
    return qoc::fnv1a64(core::schedule_to_json(r.schedule));
}

bool has_verify_failed_report(const EpocResult& r) {
    for (const auto& br : r.block_reports)
        if (br.status.cause == util::Cause::verify_failed) return true;
    return false;
}

// ---------------------------------------------------------------------------
// Level plumbing.

TEST(VerifyLevelTest, NamesRoundTrip) {
    EXPECT_EQ(level_from_name("off"), VerifyLevel::off);
    EXPECT_EQ(level_from_name("sampled"), VerifyLevel::sampled);
    EXPECT_EQ(level_from_name("full"), VerifyLevel::full);
    EXPECT_THROW(level_from_name("FULL"), std::invalid_argument);
    EXPECT_STREQ(level_name(VerifyLevel::sampled), "sampled");
    EXPECT_STREQ(outcome_name(Outcome::unverified), "unverified");
    EXPECT_STREQ(util::cause_name(util::Cause::verify_failed), "verify_failed");
}

TEST(VerifyLevelTest, EnvResolvesOnlyWhenUnset) {
    const EnvGuard env("EPOC_VERIFY", "full");
    EXPECT_EQ(level_from_env(), VerifyLevel::full);
    EXPECT_EQ(resolve_level(VerifyLevel::unset), VerifyLevel::full);
    // An explicit option always wins over the environment.
    EXPECT_EQ(resolve_level(VerifyLevel::off), VerifyLevel::off);
    EXPECT_EQ(resolve_level(VerifyLevel::sampled), VerifyLevel::sampled);
}

TEST(VerifyLevelTest, MalformedEnvIsOffNotAnError) {
    const EnvGuard env("EPOC_VERIFY", "frobnicate");
    EXPECT_EQ(level_from_env(), VerifyLevel::off);
    EXPECT_EQ(resolve_level(VerifyLevel::unset), VerifyLevel::off);
}

TEST(VerifyLevelTest, DisabledVerifierChecksNothing) {
    Verifier v{VerifyOptions{}}; // level off
    EXPECT_FALSE(v.enabled());
    EXPECT_FALSE(v.should_check(1));
    Circuit a(1);
    a.x(0);
    Circuit b(1); // NOT equivalent -- and off must not even look
    EXPECT_EQ(v.check_circuit_equiv(a, b, "test"), Outcome::not_checked);
    EXPECT_EQ(v.summary().checks, 0u);
}

TEST(VerifyLevelTest, SamplingIsDeterministicAndProper) {
    VerifyOptions o;
    o.level = VerifyLevel::sampled;
    o.sample_period = 4;
    Verifier v{o};
    std::size_t n = 0;
    for (std::uint64_t id = 0; id < 256; ++id)
        if (v.should_check(id)) ++n;
    EXPECT_GT(n, 0u);  // a proper subset: some checked...
    EXPECT_LT(n, 256u); // ...but not all
    Verifier again{o};
    for (std::uint64_t id = 0; id < 256; ++id)
        EXPECT_EQ(v.should_check(id), again.should_check(id));

    o.level = VerifyLevel::full;
    Verifier full_v{o};
    for (std::uint64_t id = 0; id < 64; ++id) EXPECT_TRUE(full_v.should_check(id));
}

// ---------------------------------------------------------------------------
// Stage-equivalence oracles.

Verifier full_verifier() {
    VerifyOptions o;
    o.level = VerifyLevel::full;
    return Verifier{o};
}

TEST(VerifyOracles, CircuitEquivPassesOnHonestRewrites) {
    Verifier v = full_verifier();
    const Circuit c = bench::qft(3);
    const zx::ZxOptimizeResult zr = zx::zx_optimize(c);
    EXPECT_EQ(v.check_circuit_equiv(c, zr.circuit, "zx"), Outcome::passed);
    EXPECT_EQ(v.summary().passed, 1u);
}

TEST(VerifyOracles, CircuitEquivCatchesDoctoredCircuit) {
    Verifier v = full_verifier();
    const Circuit c = bench::ghz(3);
    Circuit doctored = c;
    doctored.x(0); // plausible circuit, wrong unitary
    EXPECT_EQ(v.check_circuit_equiv(c, doctored, "zx"), Outcome::failed);
}

TEST(VerifyOracles, CircuitEquivIsWidthGated) {
    VerifyOptions o;
    o.level = VerifyLevel::full;
    o.max_equiv_qubits = 3;
    Verifier v{o};
    const Circuit c = bench::ghz(5);
    EXPECT_EQ(v.check_circuit_equiv(c, c, "zx"), Outcome::not_checked);
    EXPECT_EQ(v.summary().skipped, 1u);
    EXPECT_EQ(v.summary().checks, 0u);
}

TEST(VerifyOracles, BlocksEquivPassesOnHonestPartition) {
    Verifier v = full_verifier();
    const Circuit c = bench::qft(4);
    const auto blocks = partition::greedy_partition(c, {3, 24});
    EXPECT_EQ(v.check_blocks_equiv(c, blocks, "partition"), Outcome::passed);
}

TEST(VerifyOracles, BlocksEquivCatchesTamperedBlock) {
    Verifier v = full_verifier();
    const Circuit c = bench::qft(4);
    auto blocks = partition::greedy_partition(c, {3, 24});
    ASSERT_FALSE(blocks.empty());
    blocks.front().body.x(0); // corrupt one block's gates
    EXPECT_EQ(v.check_blocks_equiv(c, blocks, "partition"), Outcome::failed);
}

TEST(VerifyOracles, BlocksEquivPassesOnHonestRegroup) {
    Verifier v = full_verifier();
    const Circuit c = bench::qft(4);
    const auto groups = core::regroup(c, {3, 32});
    EXPECT_EQ(v.check_blocks_equiv(c, groups, "regroup"), Outcome::passed);
}

TEST(VerifyOracles, SynthesizedBlockOracle) {
    Verifier v = full_verifier();
    Circuit local(1);
    local.h(0);
    EXPECT_EQ(v.check_synthesized_block(circuit::hadamard(), local, 1e-6),
              Outcome::passed);
    EXPECT_EQ(v.check_synthesized_block(circuit::pauli_x(), local, 1e-6),
              Outcome::failed);
}

// ---------------------------------------------------------------------------
// Schedule audit: pulse re-simulation.

TEST(VerifyAudit, PassesOnHonestPulseAndCatchesCorruption) {
    Verifier v = full_verifier();
    const auto h = qoc::make_block_hamiltonian(1);
    qoc::LatencySearchOptions opt;
    opt.fidelity_threshold = 0.99;
    qoc::LatencyResult lr = qoc::find_minimal_latency_pulse(h, circuit::pauli_x(), opt);
    ASSERT_TRUE(lr.feasible);

    double err = 1.0, resim = 0.0;
    EXPECT_EQ(v.audit_pulse(h, circuit::pauli_x(), lr, &err, &resim), Outcome::passed);
    EXPECT_LT(err, 1e-9); // recorded fidelity = the physics, to float noise
    EXPECT_NEAR(resim, lr.pulse.fidelity, 1e-9);

    // Post-checksum corruption: zero the amplitudes, keep the recorded
    // fidelity. Every structural check still passes; only re-simulation
    // disagrees.
    qoc::LatencyResult bad = lr;
    for (auto& line : bad.pulse.amplitudes) std::fill(line.begin(), line.end(), 0.0);
    EXPECT_EQ(v.audit_pulse(h, circuit::pauli_x(), bad, &err, &resim), Outcome::failed);
    EXPECT_GT(err, 0.5); // drift-only evolution is nowhere near an X gate
    EXPECT_LT(resim, 0.5);

    EXPECT_TRUE(v.revalidate(h, circuit::pauli_x(), lr));
    EXPECT_FALSE(v.revalidate(h, circuit::pauli_x(), bad));
    const VerifySummary s = v.summary();
    EXPECT_EQ(s.revalidations, 2u);
    EXPECT_EQ(s.revalidate_rejects, 1u);
    EXPECT_FALSE(s.clean());
}

TEST(VerifyAudit, BrokenVerifierNeverRejects) {
    Verifier v = full_verifier();
    const auto h = qoc::make_block_hamiltonian(1);
    qoc::LatencyResult bad; // garbage result, but the verifier is down
    bad.pulse.fidelity = 0.9999;
    const FaultGuard g("verify.revalidate=*;verify.simulate=*;verify.equiv=*");
    EXPECT_TRUE(v.revalidate(h, circuit::pauli_x(), bad)); // accept, don't reject
    EXPECT_EQ(v.audit_pulse(h, circuit::pauli_x(), bad), Outcome::unverified);
    Circuit a(1);
    a.x(0);
    EXPECT_EQ(v.check_circuit_equiv(a, Circuit(1), "zx"), Outcome::unverified);
    EXPECT_GT(v.summary().unverified, 0u);
    EXPECT_EQ(v.summary().failed, 0u);
}

// ---------------------------------------------------------------------------
// Cache eviction primitives backing the recompute-once rung.

TEST(VerifyCache, EraseIfIsCompareAndEvict) {
    util::ShardedFlightCache<int> cache;
    const auto always = [](const int&) { return true; };
    const auto one = cache.get_or_compute("k", [] { return 1; }, always);
    const auto other = std::make_shared<const int>(1);
    EXPECT_FALSE(cache.erase_if("k", other)); // equal value, different identity
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.erase_if("k", one)); // the exact rejected value: evicted
    EXPECT_FALSE(cache.erase_if("k", one)); // second caller loses the race
    const auto two = cache.get_or_compute("k", [] { return 2; }, always);
    EXPECT_EQ(*two, 2); // recomputed, not served from the evicted entry
    cache.erase("k");
    EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Pipeline integration.

TEST(VerifyPipeline, FullCleanCompileIsBitIdenticalToOff) {
    const Circuit c = bench::ghz(3);
    EpocCompiler off(cheap_options(1, VerifyLevel::off));
    const EpocResult r_off = off.compile(c);
    EXPECT_EQ(r_off.verify.level, VerifyLevel::off);
    EXPECT_EQ(r_off.verify.checks, 0u);

    EpocCompiler full(cheap_options(1, VerifyLevel::full));
    const EpocResult r_full = full.compile(c);
    EXPECT_EQ(r_full.verify.level, VerifyLevel::full);
    EXPECT_GT(r_full.verify.checks, 0u);
    EXPECT_EQ(r_full.verify.failed, 0u);
    EXPECT_EQ(r_full.verify.recomputes, 0u);
    EXPECT_TRUE(r_full.verify.clean());
    EXPECT_FALSE(r_full.degraded);
    EXPECT_LT(r_full.verify.error_budget, 1e-6);
    EXPECT_LT(r_full.verify.max_fidelity_error, 1e-6);
    // Audits must not perturb the artifact: same schedule, byte for byte.
    EXPECT_EQ(digest(r_full), digest(r_off));
    // Every audited unit of work carries its outcome on the report.
    std::size_t passed_reports = 0;
    for (const auto& br : r_full.block_reports)
        if (br.verify == Outcome::passed) ++passed_reports;
    EXPECT_GT(passed_reports, 0u);
}

TEST(VerifyPipeline, InjectedBadPulseIsDetectedRecomputedAndCured) {
    const Circuit c = bench::ghz(3);
    EpocCompiler clean(cheap_options(1, VerifyLevel::off));
    const std::uint64_t clean_digest = digest(clean.compile(c));

    const FaultGuard g("latency.badpulse=1");
    EpocCompiler v(cheap_options(1, VerifyLevel::full));
    const EpocResult r = v.compile(c);
    // Detected: the audit failed at least once and triggered one recompute.
    EXPECT_GT(r.verify.failed, 0u);
    EXPECT_GE(r.verify.recomputes, 1u);
    EXPECT_TRUE(has_verify_failed_report(r));
    EXPECT_EQ(r.status.cause, util::Cause::verify_failed);
    EXPECT_TRUE(r.degraded);
    // Cured: the recompute regenerated an honest pulse, so the shipped
    // schedule equals the uncorrupted run's, byte for byte.
    EXPECT_EQ(digest(r), clean_digest);
}

TEST(VerifyPipeline, OffShipsTheCorruptedPulseSilently) {
    // The control experiment: with verification off, the zeroed-amplitude
    // pulse sails through -- the schedule *looks* identical (amplitudes are
    // not in the schedule, and the recorded fidelity was left intact), no
    // report flags anything. This is exactly the silent drift the verify
    // tier exists to catch.
    const Circuit c = bench::ghz(3);
    const FaultGuard g("latency.badpulse=1");
    EpocCompiler off(cheap_options(1, VerifyLevel::off));
    const EpocResult r = off.compile(c);
    EXPECT_FALSE(r.degraded);
    EXPECT_FALSE(has_verify_failed_report(r));
    EXPECT_EQ(r.verify.checks, 0u);
}

TEST(VerifyPipeline, BrokenVerifierDegradesToUnverifiedNotFailure) {
    const Circuit c = bench::ghz(3);
    EpocCompiler clean(cheap_options(1, VerifyLevel::off));
    const std::uint64_t clean_digest = digest(clean.compile(c));

    const FaultGuard g("verify.equiv=*;verify.simulate=*");
    EpocCompiler v(cheap_options(1, VerifyLevel::full));
    const EpocResult r = v.compile(c);
    EXPECT_FALSE(r.degraded); // a broken verifier must never fail a clean compile
    EXPECT_EQ(r.verify.failed, 0u);
    EXPECT_GT(r.verify.unverified, 0u);
    EXPECT_EQ(digest(r), clean_digest);
    for (const auto& br : r.block_reports) EXPECT_NE(br.verify, Outcome::failed);
}

TEST(VerifyPipeline, InjectedBadSynthesisFallsBackViaVerifyFailed) {
    // synth.badcircuit corrupts the QSearch result after it leaves the cache;
    // the synthesis oracle must catch it, recompute, and (as the recompute
    // path re-fires the site with `=*`) fall back to the original gates.
    EpocOptions opt = cheap_options(1, VerifyLevel::full);
    opt.use_kak = false; // 2q blocks go through QSearch, where the site lives
    opt.use_zx = false;  // keep the 4-CNOT block intact so synthesis must win
    opt.partition.max_qubits = 2;
    opt.qsearch.instantiate.restarts = 4;
    // A generic SU(4) element written with 4 CNOTs: QSearch finds a <= 3-CNOT
    // realisation, so the synthesized circuit replaces the block -- the path
    // the corruption site sits on.
    Circuit c(2);
    c.cx(0, 1).rz(0.3, 1).cx(0, 1).ry(0.5, 0).cx(1, 0).rx(0.7, 1).cx(0, 1);

    const FaultGuard g("synth.badcircuit=*");
    EpocCompiler v(opt);
    const EpocResult r = v.compile(c);
    EXPECT_TRUE(has_verify_failed_report(r));
    EXPECT_GT(r.verify.failed, 0u);
    // Degraded but valid: the original gates shipped, the schedule is whole.
    EXPECT_TRUE(r.degraded);
    EXPECT_GT(r.schedule.pulses.size(), 0u);
}

TEST(VerifyPipeline, CountersAndScheduleDeterministicAcrossThreads) {
    const Circuit c = bench::qft(3);
    std::uint64_t first_digest = 0;
    VerifySummary first{};
    bool have_first = false;
    for (const int threads : {1, 2, 8}) {
        EpocCompiler v(cheap_options(threads, VerifyLevel::sampled));
        const EpocResult r = v.compile(c);
        EXPECT_EQ(r.verify.failed, 0u) << threads;
        if (!have_first) {
            first_digest = digest(r);
            first = r.verify;
            have_first = true;
            continue;
        }
        EXPECT_EQ(digest(r), first_digest) << threads;
        EXPECT_EQ(r.verify.checks, first.checks) << threads;
        EXPECT_EQ(r.verify.passed, first.passed) << threads;
        EXPECT_EQ(r.verify.skipped, first.skipped) << threads;
        EXPECT_NEAR(r.verify.error_budget, first.error_budget, 1e-12) << threads;
    }
}

// ---------------------------------------------------------------------------
// Store revalidation.

TEST(VerifyStore, PostChecksumCorruptionIsDetectedQuarantinedRecomputed) {
    const Circuit c = bench::ghz(3);
    TempDir dir;
    EpocOptions warm_opt = cheap_options(1, VerifyLevel::off);
    warm_opt.pulse_store_dir = dir.str();
    std::uint64_t clean_digest = 0;
    {
        EpocCompiler warm(warm_opt);
        const EpocResult r = warm.compile(c);
        clean_digest = digest(r);
        ASSERT_GT(r.store_stats.writes, 0u);
    }
    // Corrupt every entry *post checksum*: magic, version, key, codec and
    // checksum all still verify. A plain load serves this as a clean hit.
    {
        store::PulseStore s({dir.str()});
        ASSERT_GT(s.corrupt_all_entries_for_test(), 0u);
    }
    // A verifying compiler re-simulates L2 hits on load: every corrupted
    // entry is rejected, quarantined via the store's invalidate path, and
    // regenerated -- ending at the same schedule as the uncorrupted run.
    EpocOptions vopt = cheap_options(1, VerifyLevel::full);
    vopt.pulse_store_dir = dir.str();
    EpocCompiler v(vopt);
    const EpocResult r = v.compile(c);
    EXPECT_GT(r.verify.revalidations, 0u);
    EXPECT_GT(r.verify.revalidate_rejects, 0u);
    EXPECT_GT(r.library_stats.store_rejected, 0u);
    EXPECT_GT(r.store_stats.invalidated, 0u);
    EXPECT_EQ(r.verify.failed, 0u); // caught at the store boundary, not in pulses
    EXPECT_EQ(digest(r), clean_digest);
    // The quarantine directory holds the rejected entries for post-mortem.
    EXPECT_TRUE(fs::exists(dir.path / "quarantine"));
}

TEST(VerifyStore, OffPromotesCorruptedEntriesSilently) {
    const Circuit c = bench::ghz(3);
    TempDir dir;
    EpocOptions opt = cheap_options(1, VerifyLevel::off);
    opt.pulse_store_dir = dir.str();
    {
        EpocCompiler warm(opt);
        ASSERT_GT(warm.compile(c).store_stats.writes, 0u);
    }
    {
        store::PulseStore s({dir.str()});
        ASSERT_GT(s.corrupt_all_entries_for_test(), 0u);
    }
    EpocCompiler off(opt);
    const EpocResult r = off.compile(c);
    EXPECT_GT(r.library_stats.store_hits, 0u); // served as clean hits
    EXPECT_EQ(r.library_stats.store_rejected, 0u);
    EXPECT_EQ(r.store_stats.invalidated, 0u);
    EXPECT_FALSE(r.degraded);
}

TEST(VerifyStore, BrokenRevalidatorAcceptsButPulseAuditStillCatches) {
    // Defence in depth: with verify.revalidate broken, the corrupted store
    // entry is promoted ("never reject a good store on a broken verifier") --
    // and then the schedule audit catches it downstream, recomputes, and the
    // final schedule still equals the clean run's.
    const Circuit c = bench::ghz(3);
    TempDir dir;
    EpocOptions opt = cheap_options(1, VerifyLevel::off);
    opt.pulse_store_dir = dir.str();
    std::uint64_t clean_digest = 0;
    {
        EpocCompiler warm(opt);
        clean_digest = digest(warm.compile(c));
    }
    {
        store::PulseStore s({dir.str()});
        ASSERT_GT(s.corrupt_all_entries_for_test(), 0u);
    }
    const FaultGuard g("verify.revalidate=*");
    EpocOptions vopt = cheap_options(1, VerifyLevel::full);
    vopt.pulse_store_dir = dir.str();
    EpocCompiler v(vopt);
    const EpocResult r = v.compile(c);
    EXPECT_GT(r.verify.unverified, 0u); // the revalidator failed open
    EXPECT_EQ(r.library_stats.store_rejected, 0u);
    EXPECT_GT(r.verify.failed, 0u); // ...but the pulse audit caught it
    EXPECT_GE(r.verify.recomputes, 1u);
    EXPECT_EQ(digest(r), clean_digest);
}

// ---------------------------------------------------------------------------
// Plan cache: doctored entries must be detected at instantiation, evicted,
// and rebuilt — never shipped.

TEST(VerifyPlanCache, DoctoredPlanIsDetectedEvictedAndRebuilt) {
    const auto qaoa = [](double gamma, double beta) {
        Circuit c(2);
        c.h(0).h(1);
        c.rzz(gamma, 0, 1);
        c.rx(beta, 0).rx(beta, 1);
        return c;
    };
    EpocOptions opt = cheap_options(1, VerifyLevel::full);
    opt.plan_cache = true;
    opt.plan_warm_start = false; // pin the reproducible path for digests

    // The reference: a clean compile at the victim angles.
    EpocCompiler clean(opt);
    (void)clean.compile(qaoa(0.4, 0.9));
    const std::uint64_t clean_digest = digest(clean.compile(qaoa(1.3, -0.6)));

    // Build an honest plan, then doctor its cached regroup layout: a stale
    // block body whose unitary no longer merges to the skeleton's.
    EpocCompiler victim(opt);
    (void)victim.compile(qaoa(0.4, 0.9));
    const std::string key = circuit::strip_parameters(qaoa(0.4, 0.9)).key;
    const auto honest = victim.plan_cache().peek(key);
    ASSERT_NE(honest, nullptr);
    ASSERT_FALSE(honest->groups.empty());
    core::CompilationPlan doctored;
    doctored.key = honest->key;
    doctored.num_qubits = honest->num_qubits;
    doctored.num_slots = honest->num_slots;
    doctored.skeleton = honest->skeleton;
    doctored.fine_bindings = honest->fine_bindings;
    doctored.groups = honest->groups;
    doctored.depth_original = honest->depth_original;
    doctored.depth_after_zx = honest->depth_after_zx;
    doctored.partition_blocks = honest->partition_blocks;
    doctored.groups.front().block.body.x(0); // plausible layout, wrong unitary
    victim.plan_cache().replace(key, std::move(doctored));

    // The next compile must catch the tampering before any pulse work,
    // compare-and-evict the entry, rebuild it, and ship the clean artifact.
    const EpocResult r = victim.compile(qaoa(1.3, -0.6));
    EXPECT_GT(r.verify.failed, 0u);
    EXPECT_GE(r.verify.recomputes, 1u);
    EXPECT_FALSE(r.plan_hit); // the rebuilt plan, not the doctored one
    EXPECT_EQ(digest(r), clean_digest);

    // The rebuilt entry is honest: the following compile is an ordinary hit
    // with the same bytes.
    const EpocResult again = victim.compile(qaoa(1.3, -0.6));
    EXPECT_TRUE(again.plan_hit);
    EXPECT_EQ(again.verify.failed, 0u); // the tally resets per compile
    EXPECT_EQ(digest(again), clean_digest);
}

} // namespace
