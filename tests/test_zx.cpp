#include "zx/circuit_to_zx.h"
#include "zx/extract.h"
#include "zx/gf2.h"
#include "zx/graph.h"
#include "zx/simplify.h"

#include "circuit/unitary.h"
#include "linalg/phase.h"
#include "linalg/random_unitary.h"

#include <gtest/gtest.h>

#include <numbers>
#include <random>

namespace {

using namespace epoc::zx;
using epoc::circuit::Circuit;
using epoc::circuit::circuit_unitary;
using epoc::circuit::GateKind;
using epoc::linalg::equal_up_to_global_phase;
using epoc::linalg::Matrix;

constexpr double kPi = std::numbers::pi;

// ---------- graph core -------------------------------------------------------

TEST(ZxGraph, AddVertexAndEdge) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z, 0.5);
    const int b = g.add_vertex(VertexType::Z);
    g.add_edge(a, b, EdgeType::Hadamard);
    EXPECT_TRUE(g.connected(a, b));
    EXPECT_EQ(g.edge(a, b).hadamard, 1);
    EXPECT_EQ(g.num_vertices(), 2);
    EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ZxGraph, ParallelHadamardEdgesCancelSameColour) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z);
    const int b = g.add_vertex(VertexType::Z);
    g.add_edge(a, b, EdgeType::Hadamard);
    g.add_edge(a, b, EdgeType::Hadamard);
    EXPECT_FALSE(g.connected(a, b));
}

TEST(ZxGraph, ParallelSimpleEdgesIdempotentSameColour) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z);
    const int b = g.add_vertex(VertexType::Z);
    g.add_edge(a, b, EdgeType::Simple);
    g.add_edge(a, b, EdgeType::Simple);
    EXPECT_EQ(g.edge(a, b).simple, 1);
}

TEST(ZxGraph, HopfLawDifferentColours) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z);
    const int b = g.add_vertex(VertexType::X);
    g.add_edge(a, b, EdgeType::Simple);
    g.add_edge(a, b, EdgeType::Simple);
    EXPECT_FALSE(g.connected(a, b));
    g.add_edge(a, b, EdgeType::Hadamard);
    g.add_edge(a, b, EdgeType::Hadamard);
    EXPECT_EQ(g.edge(a, b).hadamard, 1);
}

TEST(ZxGraph, HadamardSelfLoopAddsPi) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z, 0.25);
    g.add_edge(a, a, EdgeType::Hadamard);
    EXPECT_NEAR(g.phase(a), 0.25 + kPi, 1e-12);
    g.add_edge(a, a, EdgeType::Simple);
    EXPECT_NEAR(g.phase(a), 0.25 + kPi, 1e-12);
}

TEST(ZxGraph, FuseAddsPhasesAndRewires) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z, 0.3);
    const int b = g.add_vertex(VertexType::Z, 0.4);
    const int c = g.add_vertex(VertexType::Z);
    g.add_edge(a, b, EdgeType::Simple);
    g.add_edge(b, c, EdgeType::Hadamard);
    g.fuse(a, b);
    EXPECT_FALSE(g.alive(b));
    EXPECT_NEAR(g.phase(a), 0.7, 1e-12);
    EXPECT_EQ(g.edge(a, c).hadamard, 1);
}

TEST(ZxGraph, FuseWithExtraParallelHadamardAddsPi) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z, 0.0);
    const int b = g.add_vertex(VertexType::Z, 0.0);
    g.add_edge(a, b, EdgeType::Simple);
    g.add_edge(a, b, EdgeType::Hadamard);
    g.fuse(a, b);
    EXPECT_NEAR(g.phase(a), kPi, 1e-12);
}

TEST(ZxGraph, ColorChangeTogglesEdgeTypes) {
    ZxGraph g;
    const int x = g.add_vertex(VertexType::X, 0.7);
    const int z = g.add_vertex(VertexType::Z);
    g.add_edge(x, z, EdgeType::Simple);
    g.color_change(x);
    EXPECT_EQ(g.type(x), VertexType::Z);
    EXPECT_EQ(g.edge(x, z).hadamard, 1);
    EXPECT_EQ(g.edge(x, z).simple, 0);
    EXPECT_NEAR(g.phase(x), 0.7, 1e-12);
}

TEST(ZxGraph, PhasePredicates) {
    ZxGraph g;
    const int a = g.add_vertex(VertexType::Z, 0.0);
    const int b = g.add_vertex(VertexType::Z, kPi);
    const int c = g.add_vertex(VertexType::Z, kPi / 2);
    const int d = g.add_vertex(VertexType::Z, -kPi / 2);
    const int e = g.add_vertex(VertexType::Z, kPi / 4);
    EXPECT_TRUE(g.is_pauli_phase(a));
    EXPECT_TRUE(g.is_pauli_phase(b));
    EXPECT_FALSE(g.is_pauli_phase(c));
    EXPECT_TRUE(g.is_proper_clifford_phase(c));
    EXPECT_TRUE(g.is_proper_clifford_phase(d));
    EXPECT_FALSE(g.is_proper_clifford_phase(e));
}

// ---------- GF(2) ------------------------------------------------------------

TEST(Gf2, GaussReducesIdentityLikeMatrix) {
    Mat2 m(3, 3);
    m(0, 0) = m(0, 1) = 1;
    m(1, 1) = 1;
    m(2, 2) = 1;
    const std::size_t rank = m.gauss();
    EXPECT_EQ(rank, 3u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), r == c ? 1 : 0);
}

TEST(Gf2, RowOpsReproduceElimination) {
    std::mt19937_64 rng(3);
    Mat2 m(4, 6);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 6; ++c) m(r, c) = rng() & 1;
    Mat2 copy = m;
    std::vector<std::pair<std::size_t, std::size_t>> ops;
    m.gauss([&](std::size_t s, std::size_t d) { ops.emplace_back(s, d); });
    for (const auto& [s, d] : ops) copy.row_add(s, d);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(copy(r, c), m(r, c));
}

TEST(Gf2, RankOfSingularMatrix) {
    Mat2 m(2, 2);
    m(0, 0) = m(0, 1) = m(1, 0) = m(1, 1) = 1;
    EXPECT_EQ(m.gauss(), 1u);
}

// ---------- conversion / simplification --------------------------------------

TEST(CircuitToZx, SpiderCountsForSimpleCircuit) {
    Circuit c(2);
    c.h(0).cx(0, 1).t(1);
    const ZxGraph g = circuit_to_zx(c);
    // 2 inputs + 2 outputs + h spider + 2 cx spiders + t spider
    EXPECT_EQ(g.num_vertices(), 8);
    EXPECT_EQ(g.inputs().size(), 2u);
    EXPECT_EQ(g.outputs().size(), 2u);
}

TEST(CircuitToZx, RejectsVug) {
    Circuit c(2);
    c.add(epoc::circuit::Gate::make_unitary(
        {0, 1}, epoc::linalg::random_unitary(4, std::uint64_t{3}),
        epoc::circuit::GateKind::VUG));
    EXPECT_THROW(circuit_to_zx(c), std::invalid_argument);
}

TEST(Simplify, ToGraphLikeLeavesOnlyZSpiders) {
    Circuit c(3);
    c.h(0).cx(0, 1).x(2).cx(1, 2).sx(1);
    ZxGraph g = circuit_to_zx(c);
    to_graph_like(g);
    for (const int v : g.vertices())
        EXPECT_NE(g.type(v), VertexType::X);
    // Interior-interior edges are Hadamard only.
    for (const int v : g.vertices()) {
        if (!g.is_interior(v)) continue;
        for (const auto& [w, cnt] : g.adjacency(v)) {
            if (g.is_interior(w)) {
                EXPECT_EQ(cnt.simple, 0);
            }
        }
    }
}

TEST(Simplify, FullReduceShrinksTCircuit) {
    Circuit c(2);
    c.h(0).cx(0, 1).t(0).t(1).cx(0, 1).h(0);
    ZxGraph g = circuit_to_zx(c);
    const int before = g.num_vertices();
    const SimplifyStats st = full_reduce(g);
    EXPECT_LT(g.num_vertices(), before);
    EXPECT_GT(st.spider_fusions, 0);
}

// ---------- extraction round-trips -------------------------------------------

Circuit random_clifford_t_circuit(int nq, int ngates, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> qd(0, nq - 1);
    std::uniform_int_distribution<int> gd(0, 8);
    std::uniform_real_distribution<double> ang(-kPi, kPi);
    Circuit c(nq);
    for (int i = 0; i < ngates; ++i) {
        const int q = qd(rng);
        switch (gd(rng)) {
        case 0: c.h(q); break;
        case 1: c.s(q); break;
        case 2: c.t(q); break;
        case 3: c.z(q); break;
        case 4: c.x(q); break;
        case 5: c.rz(ang(rng), q); break;
        case 6: c.sx(q); break;
        default: {
            if (nq < 2) {
                c.h(q);
                break;
            }
            int q2 = qd(rng);
            while (q2 == q) q2 = qd(rng);
            if (gd(rng) % 2 == 0)
                c.cx(q, q2);
            else
                c.cz(q, q2);
            break;
        }
        }
    }
    return c;
}

void expect_roundtrip(const Circuit& c, bool reduce) {
    ZxGraph g = circuit_to_zx(c);
    if (reduce)
        full_reduce(g);
    else
        to_graph_like(g);
    const Circuit out = extract_circuit(std::move(g));
    ASSERT_EQ(out.num_qubits(), c.num_qubits());
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(out), circuit_unitary(c), 1e-6))
        << "reduce=" << reduce << "\n"
        << c.to_string();
}

TEST(Extract, IdentityWire) {
    Circuit c(1);
    expect_roundtrip(c, true);
}

TEST(Extract, SingleHGate) {
    Circuit c(1);
    c.h(0);
    expect_roundtrip(c, false);
    Circuit c2(1);
    c2.h(0);
    expect_roundtrip(c2, true);
}

TEST(Extract, DoubleH) {
    Circuit c(1);
    c.h(0).h(0);
    expect_roundtrip(c, true);
}

TEST(Extract, SingleRz) {
    Circuit c(1);
    c.rz(0.7, 0);
    expect_roundtrip(c, true);
}

TEST(Extract, BellPair) {
    Circuit c(2);
    c.h(0).cx(0, 1);
    expect_roundtrip(c, false);
    Circuit c2(2);
    c2.h(0).cx(0, 1);
    expect_roundtrip(c2, true);
}

TEST(Extract, GhzThree) {
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    expect_roundtrip(c, true);
}

TEST(Extract, SwapViaCnots) {
    Circuit c(2);
    c.cx(0, 1).cx(1, 0).cx(0, 1);
    expect_roundtrip(c, true);
}

TEST(Extract, CliffordHeavyCircuit) {
    Circuit c(3);
    c.h(0).s(1).cz(0, 1).h(1).cx(1, 2).s(2).h(2).cz(0, 2).sx(0);
    expect_roundtrip(c, true);
}

class ExtractRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractRandom, GraphLikeOnlyRoundTrip) {
    const std::uint64_t seed = GetParam();
    const int nq = 2 + static_cast<int>(seed % 3);
    const Circuit c = random_clifford_t_circuit(nq, 14 + static_cast<int>(seed % 11), seed);
    expect_roundtrip(c, false);
}

TEST_P(ExtractRandom, FullReduceRoundTrip) {
    const std::uint64_t seed = GetParam();
    const int nq = 2 + static_cast<int>(seed % 3);
    const Circuit c = random_clifford_t_circuit(nq, 14 + static_cast<int>(seed % 11), seed);
    expect_roundtrip(c, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractRandom,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{30}));

TEST(Extract, FourQubitDeepCircuit) {
    const Circuit c = random_clifford_t_circuit(4, 40, 999);
    expect_roundtrip(c, true);
}

TEST(Extract, FullReduceReducesCliffordDepth) {
    // A Clifford-only circuit should collapse substantially under full_reduce.
    Circuit c(3);
    for (int rep = 0; rep < 4; ++rep) {
        c.h(0).s(1).cz(0, 1).h(1).cx(1, 2).s(2).h(2).cz(0, 2);
    }
    ZxGraph g = circuit_to_zx(c);
    full_reduce(g);
    const Circuit out = extract_circuit(std::move(g));
    EXPECT_TRUE(equal_up_to_global_phase(circuit_unitary(out), circuit_unitary(c), 1e-6));
    EXPECT_LT(out.size(), c.size() * 2); // sanity: no blow-up
}

} // namespace
