// Tensor-semantics tests: zx_to_matrix is the ground truth that pins down the
// ZX rewrite system. Distances here are scale- AND phase-invariant because
// diagram evaluation keeps sqrt(2) scalar factors.
#include "zx/circuit_to_zx.h"
#include "zx/simplify.h"
#include "zx/tensor.h"

#include "bench_circuits/random_circuits.h"
#include "circuit/unitary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

namespace {

using namespace epoc::zx;
using epoc::circuit::Circuit;
using epoc::circuit::circuit_unitary;
using epoc::linalg::cplx;
using epoc::linalg::Matrix;

double scale_phase_distance(const Matrix& a, const Matrix& b) {
    cplx ov{0.0, 0.0};
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) ov += std::conj(a(i, j)) * b(i, j);
    const double f = std::abs(ov) / (a.frobenius_norm() * b.frobenius_norm());
    return std::sqrt(std::max(0.0, 1.0 - f));
}

void expect_semantics(const Circuit& c, bool reduce) {
    ZxGraph g = circuit_to_zx(c);
    if (reduce) full_reduce(g);
    const Matrix m = zx_to_matrix(g);
    EXPECT_LT(scale_phase_distance(m, circuit_unitary(c)), 1e-6) << c.to_string();
}

TEST(ZxTensor, HGate) {
    Circuit c(1);
    c.h(0);
    expect_semantics(c, false);
}

TEST(ZxTensor, TGate) {
    Circuit c(1);
    c.t(0);
    expect_semantics(c, false);
}

TEST(ZxTensor, U3Gate) {
    Circuit c(1);
    c.u3(0.3, 0.5, 0.7, 0);
    expect_semantics(c, false);
}

TEST(ZxTensor, RyGate) {
    Circuit c(1);
    c.ry(1.1, 0);
    expect_semantics(c, false);
}

TEST(ZxTensor, CxAndCz) {
    Circuit c(2);
    c.cx(0, 1).cz(1, 0);
    expect_semantics(c, false);
}

TEST(ZxTensor, BellAndGhz) {
    Circuit b(2);
    b.h(0).cx(0, 1);
    expect_semantics(b, false);
    Circuit g(3);
    g.h(0).cx(0, 1).cx(1, 2);
    expect_semantics(g, false);
}

TEST(ZxTensor, ToffoliDecomposition) {
    // The raw Toffoli expansion has too many spiders for brute-force
    // evaluation; fuse to graph-like form first (itself verified by the
    // random graph-like tests below).
    Circuit c(3);
    c.ccx(0, 1, 2);
    ZxGraph g = circuit_to_zx(c);
    full_reduce(g); // 45 raw spiders -> 19, within brute-force range
    EXPECT_LT(scale_phase_distance(zx_to_matrix(g), circuit_unitary(c)), 1e-6);
}

TEST(ZxTensor, SwapAndControlledRotation) {
    Circuit c(3);
    c.swap(0, 2).crz(0.4, 1, 2);
    expect_semantics(c, false);
}

class ZxTensorRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZxTensorRandom, RawDiagramMatchesCircuit) {
    epoc::bench::RandomCircuitSpec spec;
    spec.seed = GetParam() * 31 + 7;
    spec.num_qubits = 2 + static_cast<int>(GetParam() % 2);
    spec.num_gates = 10 + static_cast<int>(GetParam() % 8);
    const Circuit c = epoc::bench::random_circuit(spec);
    expect_semantics(c, false);
}

TEST_P(ZxTensorRandom, FullReducePreservesSemantics) {
    epoc::bench::RandomCircuitSpec spec;
    spec.seed = GetParam() * 17 + 3;
    spec.num_qubits = 2 + static_cast<int>(GetParam() % 2);
    spec.num_gates = 10 + static_cast<int>(GetParam() % 8);
    const Circuit c = epoc::bench::random_circuit(spec);
    expect_semantics(c, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZxTensorRandom,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{12}));

TEST(ZxTensor, RejectsHugeDiagrams) {
    epoc::bench::RandomCircuitSpec spec;
    spec.num_qubits = 4;
    spec.num_gates = 120;
    spec.seed = 5;
    const Circuit c = epoc::bench::random_circuit(spec);
    const ZxGraph g = circuit_to_zx(c);
    EXPECT_THROW(zx_to_matrix(g), std::invalid_argument);
}

} // namespace
